// Reproduces Table I (§V-B): accuracy of parallelism-strategy
// identification from flow windows of varying length, on five 1,024-GPU
// jobs with ground-truth configurations, with and without the DP
// transitivity refinement.
//
// Paper result:
//   Methods                  | 1 min  | 3 min  | 5 min  | 10 min
//   LLMPrism w/o refinement  | 96.00% | 97.93% | 98.03% | 99.61%
//   LLMPrism                 |  100%  |  100%  |  100%  |  100%
//
// Absolute numbers depend on the (proprietary) collector's noise; the shape
// to reproduce is: no-refinement accuracy in the mid-90s at 1 min, rising
// with window length, and refinement pinning 100% everywhere.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "llmprism/baseline/eval.hpp"
#include "llmprism/core/comm_type.hpp"

using namespace llmprism;
using namespace llmprism::bench;

int main() {
  std::printf(
      "=== Table I: parallelism identification accuracy, five 1,024-GPU "
      "jobs ===\n\n");

  // ~4.2 s steps; 145 steps cover the 10-minute window.
  constexpr std::uint32_t kSteps = 145;
  struct JobSpec {
    const char* name;
    JobSimConfig config;
  };
  const std::vector<JobSpec> specs = {
      {"tp8/dp16/pp8         ", thousand_gpu_job(8, 16, 8, false, kSteps)},
      {"tp8/dp32/pp4 (ZeRO)  ", thousand_gpu_job(8, 32, 4, true, kSteps)},
      {"tp8/dp8/pp16         ", thousand_gpu_job(8, 8, 16, false, kSteps)},
      {"tp4/dp32/pp8         ", thousand_gpu_job(4, 32, 8, false, kSteps)},
      {"tp8/dp64/pp2 (ZeRO)  ", thousand_gpu_job(8, 64, 2, true, kSteps)},
  };
  const std::vector<DurationNs> windows = {1 * kMinute, 3 * kMinute,
                                           5 * kMinute, 10 * kMinute};

  // accuracy[w][0] = w/o refinement, accuracy[w][1] = full LLMPrism,
  // averaged over jobs (the paper reports the average of the five jobs).
  std::vector<std::array<double, 2>> accuracy(windows.size(), {0.0, 0.0});
  std::vector<std::array<double, 2>> worst(windows.size(), {1.0, 1.0});

  for (const JobSpec& spec : specs) {
    ClusterSimConfig cfg;
    cfg.topology = {.num_machines = 128,
                    .gpus_per_machine = 8,
                    .machines_per_leaf = 16,
                    .num_spines = 8};
    cfg.seed = 1024 + spec.config.parallelism.dp;
    cfg.jobs.push_back({spec.config, {}});
    cfg.noise = table1_noise();

    Stopwatch sim_watch;
    const ClusterSimResult sim = run_cluster_sim(cfg);
    std::printf("%s: %8zu flows over %5.0f s  (sim %4.1f s",
                spec.name, sim.trace.size(),
                to_seconds(sim.trace.span().length()), sim_watch.seconds());

    Stopwatch analysis_watch;
    const CommTypeIdentifier identifier;
    for (std::size_t w = 0; w < windows.size(); ++w) {
      const FlowTrace slice = sim.trace.window({0, windows[w]});
      const auto result = identifier.identify(slice);
      const auto with = score_comm_type(std::span(result.pairs), sim.jobs[0],
                                        /*use_pre_refinement=*/false);
      const auto without = score_comm_type(std::span(result.pairs),
                                           sim.jobs[0],
                                           /*use_pre_refinement=*/true);
      accuracy[w][0] += without.accuracy();
      accuracy[w][1] += with.accuracy();
      worst[w][0] = std::min(worst[w][0], without.accuracy());
      worst[w][1] = std::min(worst[w][1], with.accuracy());
    }
    std::printf(", analysis %5.1f s)\n", analysis_watch.seconds());
  }

  const auto n = static_cast<double>(specs.size());
  std::printf("\n");
  print_rule();
  std::printf("%-26s", "Methods");
  for (const DurationNs w : windows) {
    std::printf(" | %3.0f min Acc.", to_seconds(w) / 60.0);
  }
  std::printf("\n");
  print_rule();
  std::printf("%-26s", "LLMPrism w/o refinement");
  for (std::size_t w = 0; w < windows.size(); ++w) {
    std::printf(" | %10.2f%%", 100.0 * accuracy[w][0] / n);
  }
  std::printf("\n%-26s", "LLMPrism");
  for (std::size_t w = 0; w < windows.size(); ++w) {
    std::printf(" | %10.2f%%", 100.0 * accuracy[w][1] / n);
  }
  std::printf("\n");
  print_rule();
  std::printf(
      "paper:  w/o refinement 96.00 / 97.93 / 98.03 / 99.61%%; "
      "LLMPrism 100%% everywhere\n");
  std::printf("worst single job with refinement:");
  for (std::size_t w = 0; w < windows.size(); ++w) {
    std::printf(" %.2f%%", 100.0 * worst[w][1]);
  }
  std::printf("\n");

  // Exit status guards the reproduction claims.
  const bool shape_holds =
      accuracy[0][0] < accuracy[windows.size() - 1][0] &&  // rises w/ window
      accuracy[0][0] / n < 0.99 &&                         // noise visible
      accuracy[0][1] / n > 0.999;                          // refinement fixes
  return shape_holds ? 0 : 1;
}
