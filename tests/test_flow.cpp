// Unit tests for flow records, traces and CSV I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "llmprism/common/csv.hpp"
#include "llmprism/flow/io.hpp"
#include "llmprism/flow/trace.hpp"

namespace llmprism {
namespace {

FlowRecord make_flow(TimeNs t, std::uint32_t src, std::uint32_t dst,
                     std::uint64_t bytes = 1000, DurationNs dur = 100) {
  FlowRecord f;
  f.start_time = t;
  f.src = GpuId(src);
  f.dst = GpuId(dst);
  f.bytes = bytes;
  f.duration = dur;
  return f;
}

// ---------------------------------------------------------------------------
// FlowRecord

TEST(FlowRecordTest, EndTimeAndPair) {
  const auto f = make_flow(100, 1, 2, 5000, 50);
  EXPECT_EQ(f.end_time(), 150);
  EXPECT_EQ(f.pair(), GpuPair(GpuId(2), GpuId(1)));
}

TEST(FlowRecordTest, BandwidthGbps) {
  // 250 bytes in 100 ns = 2000 bits / 100 ns = 20 Gb/s.
  const auto f = make_flow(0, 1, 2, 250, 100);
  EXPECT_DOUBLE_EQ(f.bandwidth_gbps(), 20.0);
  const auto zero = make_flow(0, 1, 2, 250, 0);
  EXPECT_DOUBLE_EQ(zero.bandwidth_gbps(), 0.0);
}

TEST(FlowStartTimeLessTest, OrdersByTimeThenEndpoints) {
  const FlowStartTimeLess less;
  EXPECT_TRUE(less(make_flow(1, 9, 9), make_flow(2, 0, 0)));
  EXPECT_TRUE(less(make_flow(1, 1, 5), make_flow(1, 2, 0)));
  EXPECT_FALSE(less(make_flow(1, 1, 1), make_flow(1, 1, 1)));
}

// ---------------------------------------------------------------------------
// FlowTrace

TEST(FlowTraceTest, SortAndIsSorted) {
  FlowTrace t;
  t.add(make_flow(30, 1, 2));
  t.add(make_flow(10, 1, 2));
  t.add(make_flow(20, 1, 2));
  EXPECT_FALSE(t.is_sorted());
  t.sort();
  EXPECT_TRUE(t.is_sorted());
  EXPECT_EQ(t[0].start_time, 10);
  EXPECT_EQ(t[2].start_time, 30);
}

TEST(FlowTraceTest, WindowSelectsHalfOpenRange) {
  FlowTrace t;
  for (TimeNs i = 0; i < 10; ++i) t.add(make_flow(i * 100, 1, 2));
  t.sort();
  const auto w = t.window({200, 500});
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].start_time, 200);
  EXPECT_EQ(w[2].start_time, 400);
}

TEST(FlowTraceTest, WindowOnUnsortedThrows) {
  FlowTrace t;
  t.add(make_flow(30, 1, 2));
  t.add(make_flow(10, 1, 2));
  EXPECT_THROW(t.window({0, 100}), std::logic_error);
}

TEST(FlowTraceTest, WindowEmptyResult) {
  FlowTrace t;
  t.add(make_flow(100, 1, 2));
  t.sort();
  EXPECT_TRUE(t.window({200, 300}).empty());
  EXPECT_TRUE(FlowTrace{}.window({0, 100}).empty());
}

TEST(FlowTraceTest, SpanCoversFlows) {
  FlowTrace t;
  t.add(make_flow(100, 1, 2, 10, 50));
  t.add(make_flow(300, 1, 2, 10, 500));
  const auto s = t.span();
  EXPECT_EQ(s.begin, 100);
  EXPECT_EQ(s.end, 800);
  EXPECT_EQ(FlowTrace{}.span().length(), 0);
}

TEST(FlowTraceTest, AppendConcatenates) {
  FlowTrace a, b;
  a.add(make_flow(1, 1, 2));
  b.add(make_flow(2, 3, 4));
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(FlowTraceIndexTest, PairIndexGroupsBothDirections) {
  FlowTrace t;
  t.add(make_flow(1, 1, 2));
  t.add(make_flow(2, 2, 1));  // reverse direction, same pair
  t.add(make_flow(3, 1, 3));
  const auto idx = build_pair_index(t);
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.at(GpuPair(GpuId(1), GpuId(2))).size(), 2u);
  EXPECT_EQ(idx.at(GpuPair(GpuId(1), GpuId(3))).size(), 1u);
}

TEST(FlowTraceIndexTest, SwitchIndexCountsEveryHop) {
  FlowTrace t;
  auto f = make_flow(1, 1, 2);
  f.switches.push_back(SwitchId(0));
  f.switches.push_back(SwitchId(5));
  t.add(f);
  const auto idx = build_switch_index(t);
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.at(SwitchId(0)).size(), 1u);
  EXPECT_EQ(idx.at(SwitchId(5)).size(), 1u);
}

TEST(FlowTraceIndexTest, EndpointsAndPairs) {
  FlowTrace t;
  t.add(make_flow(1, 1, 2));
  t.add(make_flow(2, 2, 1));
  t.add(make_flow(3, 2, 3));
  EXPECT_EQ(endpoints(t).size(), 3u);
  EXPECT_EQ(communication_pairs(t).size(), 2u);
}

// ---------------------------------------------------------------------------
// CSV primitives

TEST(CsvTest, ParseSimpleLine) {
  const auto fields = csv::parse_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvTest, ParseQuotedFields) {
  const auto fields = csv::parse_line(R"(1,"two, three","he said ""hi""")");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "two, three");
  EXPECT_EQ(fields[2], "he said \"hi\"");
}

TEST(CsvTest, ParseEmptyFields) {
  const auto fields = csv::parse_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(CsvTest, UnterminatedQuoteThrows) {
  EXPECT_THROW(csv::parse_line("\"oops"), std::runtime_error);
}

TEST(CsvTest, EscapeRoundTrip) {
  const std::string nasty = R"(a,"b" c)";
  const auto escaped = csv::escape_field(nasty);
  const auto parsed = csv::parse_line(escaped);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], nasty);
}

TEST(CsvTest, ReadAllSkipsBlankLines) {
  std::istringstream is("a,b\n\nc,d\n");
  const auto rows = csv::read_all(is);
  EXPECT_EQ(rows.size(), 2u);
}

// ---------------------------------------------------------------------------
// Flow CSV I/O

TEST(FlowIoTest, RoundTripPreservesEverything) {
  FlowTrace t;
  auto f1 = make_flow(123456789, 7, 9, 1ull << 33, 42000);
  f1.switches.push_back(SwitchId(3));
  f1.switches.push_back(SwitchId(17));
  f1.switches.push_back(SwitchId(4));
  t.add(f1);
  t.add(make_flow(-5, 0, 1));  // negative time (pre-epoch) allowed

  std::stringstream ss;
  write_csv(ss, t);
  const FlowTrace back = read_csv(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], t[0]);
  EXPECT_EQ(back[1], t[1]);
}

TEST(FlowIoTest, EmptyTraceRoundTrip) {
  std::stringstream ss;
  write_csv(ss, FlowTrace{});
  EXPECT_TRUE(read_csv(ss).empty());
}

TEST(FlowIoTest, MissingHeaderThrows) {
  std::istringstream is("");
  EXPECT_THROW(read_csv(is), std::runtime_error);
}

TEST(FlowIoTest, WrongFieldCountThrows) {
  std::istringstream is("start_ns,src,dst,bytes,duration_ns,switches\n1,2,3\n");
  EXPECT_THROW(read_csv(is), std::runtime_error);
}

TEST(FlowIoTest, BadNumberThrows) {
  std::istringstream is(
      "start_ns,src,dst,bytes,duration_ns,switches\n1,x,3,4,5,\n");
  EXPECT_THROW(read_csv(is), std::runtime_error);
}

TEST(FlowIoTest, EmptySwitchListParses) {
  std::istringstream is(
      "start_ns,src,dst,bytes,duration_ns,switches\n1,2,3,4,5,\n");
  const auto t = read_csv(is);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_TRUE(t[0].switches.empty());
}

TEST(FlowIoTest, FileRoundTrip) {
  FlowTrace t;
  t.add(make_flow(1, 2, 3));
  const std::string path = ::testing::TempDir() + "/flows_test.csv";
  write_csv_file(path, t);
  const auto back = read_csv_file(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], t[0]);
  EXPECT_THROW(read_csv_file("/nonexistent/nope.csv"), std::runtime_error);
}

}  // namespace
}  // namespace llmprism
