#include "llmprism/simulator/faults.hpp"

#include <stdexcept>
#include <unordered_map>

namespace llmprism {

FlowTrace apply_switch_degradation(
    const FlowTrace& trace, const std::vector<SwitchDegradationSpec>& specs) {
  for (const SwitchDegradationSpec& s : specs) {
    if (s.bandwidth_factor <= 0.0 || s.bandwidth_factor > 1.0) {
      throw std::invalid_argument(
          "faults: bandwidth_factor must be in (0, 1]");
    }
  }

  std::unordered_map<SwitchId, std::vector<const SwitchDegradationSpec*>>
      by_switch;
  for (const SwitchDegradationSpec& s : specs) {
    by_switch[s.switch_id].push_back(&s);
  }

  FlowTrace out;
  out.reserve(trace.size());
  for (const FlowRecord& f : trace) {
    FlowRecord copy = f;
    double factor = 1.0;
    for (const SwitchId sw : f.switches) {
      const auto it = by_switch.find(sw);
      if (it == by_switch.end()) continue;
      for (const SwitchDegradationSpec* s : it->second) {
        if (s->window.contains(f.start_time)) {
          // A flow crossing several degraded hops is limited by the worst.
          factor = std::min(factor, s->bandwidth_factor);
        }
      }
    }
    if (factor < 1.0) {
      copy.duration = static_cast<DurationNs>(
          static_cast<double>(copy.duration) / factor);
    }
    out.add(copy);
  }
  out.sort();
  return out;
}

}  // namespace llmprism
