#include "llmprism/simulator/cluster_sim.hpp"

#include <stdexcept>
#include <unordered_set>

#include "llmprism/common/log.hpp"

namespace llmprism {

ClusterSimResult run_cluster_sim(const ClusterSimConfig& config) {
  ClusterSimResult result{ClusterTopology::build(config.topology), {}, {}, {}};
  const ClusterTopology& topo = result.topology;
  const std::uint32_t per_machine = config.topology.gpus_per_machine;

  // ---- machine allocation ----
  std::unordered_set<MachineId> used;
  std::uint32_t next_free = 0;
  std::vector<std::vector<MachineId>> assignments;
  assignments.reserve(config.jobs.size());
  for (const ClusterJobSpec& spec : config.jobs) {
    spec.config.validate();
    const std::uint32_t world = spec.config.parallelism.world_size();
    if (world % per_machine != 0) {
      throw std::invalid_argument(
          "cluster sim: world size must be a multiple of gpus_per_machine");
    }
    const std::uint32_t need = world / per_machine;
    std::vector<MachineId> machines = spec.machines;
    if (machines.empty()) {
      while (machines.size() < need) {
        while (next_free < topo.num_machines() &&
               used.count(MachineId(next_free)) != 0) {
          ++next_free;
        }
        if (next_free >= topo.num_machines()) {
          throw std::invalid_argument(
              "cluster sim: not enough machines for all jobs");
        }
        machines.emplace_back(next_free++);
      }
    }
    for (const MachineId m : machines) {
      if (!m.valid() || m.value() >= topo.num_machines()) {
        throw std::invalid_argument("cluster sim: machine id out of range");
      }
      if (!used.insert(m).second) {
        throw std::invalid_argument(
            "cluster sim: machine assigned to two jobs");
      }
    }
    assignments.push_back(std::move(machines));
  }

  // ---- per-job generation, each with a forked random stream ----
  Rng root(config.seed);
  FlowTrace merged;
  for (std::size_t j = 0; j < config.jobs.size(); ++j) {
    const JobId job_id(static_cast<std::uint32_t>(j));
    TrainingJobSim sim(job_id, config.jobs[j].config, assignments[j], topo);
    Rng job_rng = root.fork(j + 1);
    JobSimResult job_result = sim.run(job_rng);
    merged.append(job_result.trace);
    result.jobs.push_back(std::move(job_result.truth));

    // Labelled anomalies from this job's config.
    const auto& jc = config.jobs[j].config;
    for (const StragglerSpec& s : jc.stragglers) {
      InjectedAnomaly a;
      a.kind = AnomalyKind::kStraggler;
      a.job = job_id;
      a.step_begin = s.step_begin;
      a.step_end = s.step_end;
      a.rank = RankId(s.rank);
      a.severity = s.slowdown;
      result.anomalies.push_back(a);
    }
    for (const SlowDpGroupSpec& g : jc.slow_dp_groups) {
      InjectedAnomaly a;
      a.kind = AnomalyKind::kSlowDpGroup;
      a.job = job_id;
      a.step_begin = g.step_begin;
      a.step_end = g.step_end;
      a.dp_group_index = g.pp_idx * jc.parallelism.tp + g.tp_idx;
      a.severity = g.slowdown;
      result.anomalies.push_back(a);
    }
  }
  merged.sort();

  // ---- network faults, then collection noise ----
  if (!config.switch_faults.empty()) {
    merged = apply_switch_degradation(merged, config.switch_faults);
    for (const SwitchDegradationSpec& s : config.switch_faults) {
      InjectedAnomaly a;
      a.kind = AnomalyKind::kDegradedSwitch;
      a.switch_id = s.switch_id;
      a.severity = 1.0 / s.bandwidth_factor;
      result.anomalies.push_back(a);
    }
  }
  Rng noise_rng = root.fork(0xA0153ULL);
  result.trace = apply_noise(merged, config.noise, noise_rng);

  log::info("cluster sim: ", config.jobs.size(), " jobs, ",
            result.trace.size(), " flows");
  return result;
}

}  // namespace llmprism
