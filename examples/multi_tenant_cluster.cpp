// Multi-tenant platform scenario: a 1,024-GPU cluster running a mix of
// tenant jobs with different sizes and parallelism strategies. LLMPrism
// recognizes every network-visible job from one minute of flows and infers
// each job's parallelism layout — without any tenant cooperation.
//
// Run:  ./examples/multi_tenant_cluster [flows.csv]
// With an argument, the simulated flow trace is also exported as CSV (the
// same schema a production collector would deliver).
#include <iostream>

#include "llmprism/llmprism.hpp"

using namespace llmprism;

namespace {

JobSimConfig tenant_job(std::uint32_t tp, std::uint32_t dp, std::uint32_t pp,
                        std::uint32_t micro_batches, bool zero) {
  JobSimConfig cfg;
  cfg.parallelism = {.tp = tp, .dp = dp, .pp = pp,
                     .micro_batches = micro_batches};
  cfg.zero_overlap = zero;
  cfg.num_steps = 8;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  ClusterSimConfig sim_config;
  sim_config.topology = {.num_machines = 128,
                         .gpus_per_machine = 8,
                         .machines_per_leaf = 16,
                         .num_spines = 4};
  sim_config.seed = 7;

  // A realistic tenant mix: big pretraining jobs, mid-size fine-tunes,
  // small experiments.
  sim_config.jobs.push_back({tenant_job(8, 16, 4, 8, false), {}});  // 512 GPU
  sim_config.jobs.push_back({tenant_job(8, 8, 2, 8, true), {}});    // 128 GPU
  sim_config.jobs.push_back({tenant_job(8, 4, 2, 4, false), {}});   // 64 GPU
  sim_config.jobs.push_back({tenant_job(4, 8, 2, 4, false), {}});   // 64 GPU
  sim_config.jobs.push_back({tenant_job(8, 2, 2, 4, false), {}});   // 32 GPU
  sim_config.jobs.push_back({tenant_job(8, 4, 1, 4, true), {}});    // 32 GPU

  std::cout << "simulating 6 tenant jobs on a 1024-GPU cluster...\n";
  const ClusterSimResult sim = run_cluster_sim(sim_config);
  std::cout << "collector delivered " << sim.trace.size() << " flows over "
            << to_seconds(sim.trace.span().length()) << " s\n\n";

  if (argc > 1) {
    write_csv_file(argv[1], sim.trace);
    std::cout << "flow trace exported to " << argv[1] << "\n\n";
  }

  PrismConfig config;
  config.reconstruct_timelines = false;  // recognition + parallelism only
  const Prism prism(sim.topology, config);
  const PrismReport report = prism.analyze(sim.trace);

  std::cout << "recognized " << report.jobs.size() << " jobs from "
            << report.recognition.num_cross_machine_clusters
            << " cross-machine clusters:\n";
  std::cout << "  job | GPUs | machines | DP pairs | PP pairs | DP groups\n";
  std::cout << "  ----+------+----------+----------+----------+----------\n";
  for (const JobAnalysis& job : report.jobs) {
    std::size_t dp = 0, pp = 0;
    for (const PairClassification& p : job.comm_types.pairs) {
      (p.type == CommType::kDP ? dp : pp) += 1;
    }
    std::printf("  %3u | %4zu | %8zu | %8zu | %8zu | %9zu\n",
                job.id.value(), job.job.gpus.size(), job.job.machines.size(),
                dp, pp, job.comm_types.dp_components.size());
  }

  // Cross-check against simulator ground truth (a tenant would have to
  // confirm this manually on a real platform, as in the paper's §V-A).
  std::size_t exact = 0;
  for (const JobAnalysis& job : report.jobs) {
    for (const JobTruth& truth : sim.jobs) {
      std::vector<GpuId> expected = truth.gpus;
      std::sort(expected.begin(), expected.end());
      if (expected == job.job.gpus) {
        ++exact;
        break;
      }
    }
  }
  std::cout << "\nground truth: " << exact << '/' << sim.jobs.size()
            << " jobs recognized with exactly the right GPU sets\n";
  return 0;
}
