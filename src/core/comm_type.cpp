#include "llmprism/core/comm_type.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <unordered_set>

#include "llmprism/common/stats.hpp"
#include "llmprism/common/thread_pool.hpp"
#include "llmprism/obs/metrics.hpp"

namespace llmprism {

namespace {

/// Registry counters for what this stage filters or repairs; bulk-added
/// once per identify() call.
struct CommTypeMetrics {
  obs::Counter& pairs;
  obs::Counter& artifact_clusters;
  obs::Counter& artifact_flows;
  obs::Counter& artifact_segments;
  obs::Counter& refinement_flips;
};

CommTypeMetrics& comm_type_metrics() {
  static CommTypeMetrics metrics{
      obs::default_registry().counter(
          "llmprism_comm_type_pairs_total",
          "Communication pairs classified by Alg. 2"),
      obs::default_registry().counter(
          "llmprism_comm_type_artifact_clusters_total",
          "Rare-size clusters dropped as collector artifacts"),
      obs::default_registry().counter(
          "llmprism_comm_type_artifact_flows_total",
          "Flows inside dropped artifact size clusters"),
      obs::default_registry().counter(
          "llmprism_comm_type_artifact_segments_total",
          "Steps skipped for carrying only artifact sizes"),
      obs::default_registry().counter(
          "llmprism_comm_type_refinement_flips_total",
          "PP pairs flipped to DP by the transitivity refinement"),
  };
  return metrics;
}

/// Iterative DFS collecting the connected component of `start` in an
/// adjacency-list graph.
std::vector<std::size_t> dfs_component(
    std::size_t start, const std::vector<std::vector<std::size_t>>& adj,
    std::vector<bool>& visited) {
  std::vector<std::size_t> component;
  std::vector<std::size_t> stack{start};
  visited[start] = true;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    component.push_back(u);
    for (const std::size_t v : adj[u]) {
      if (!visited[v]) {
        visited[v] = true;
        stack.push_back(v);
      }
    }
  }
  return component;
}

}  // namespace

std::unordered_map<GpuPair, CommType> CommTypeResult::types() const {
  std::unordered_map<GpuPair, CommType> out;
  out.reserve(pairs.size());
  for (const PairClassification& p : pairs) out.emplace(p.pair, p.type);
  return out;
}

CommTypeIdentifier::CommTypeIdentifier(CommTypeConfig config)
    : config_(config) {
  if (config_.size_tolerance < 0.0 || config_.size_tolerance >= 1.0) {
    throw std::invalid_argument(
        "comm type: size_tolerance must be in [0, 1)");
  }
}

std::size_t CommTypeIdentifier::count_distinct_sizes(
    std::vector<std::uint64_t> sizes) const {
  if (sizes.empty()) return 0;
  std::sort(sizes.begin(), sizes.end());
  std::size_t distinct = 1;
  std::uint64_t cluster_base = sizes.front();
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    const double limit =
        static_cast<double>(cluster_base) * (1.0 + config_.size_tolerance);
    if (static_cast<double>(sizes[i]) > limit) {
      ++distinct;
      cluster_base = sizes[i];
    }
  }
  return distinct;
}

CommTypeResult CommTypeIdentifier::identify(const FlowTrace& job_trace) const {
  return identify(job_trace, PairIndex(job_trace), nullptr);
}

CommTypeResult CommTypeIdentifier::identify(
    const FlowTrace& job_trace, const PairIndex& pair_index,
    std::vector<CommType>* flow_types, CommTypeCarry* carry) const {
  // One transpose, then the columnar core; is_sorted() below settles the
  // view's sortedness fact from the trace's cache.
  const FlowColumns columns(job_trace);
  return identify(columns.view(), pair_index, flow_types, carry);
}

CommTypeResult CommTypeIdentifier::identify(
    const FlowView& view, const PairIndex& pair_index,
    std::vector<CommType>* flow_types, CommTypeCarry* carry,
    ThreadPool* pool) const {
  CommTypeResult result;
  // CSR positions preserve trace order, so on a sorted trace every pair's
  // flows are already chronological and nothing below re-sorts.
  const bool trace_sorted = view.sorted;
  if (carry != nullptr) {
    carry->pairs_reused = 0;
    carry->pairs_reclassified = 0;
  }

  // ---- per-pair classification (Alg. 2 lines 2-12) ----
  // Pairs fan out across the pool (the caller's per-job task participates,
  // so a null or busy pool degenerates to the sequential in-order loop).
  // Every pair owns slot `pair_id` in `result.pairs` and a private counter
  // slot; `carry->pre_types` is only read here (rebuilt after the loop) and
  // the pooled BOCD detector is thread-local, so iterations share no
  // mutable state. Counters fold in pair-id order below — the result is
  // bit-identical at any thread count. result.pairs[id] corresponds to
  // dense pair id `id` until the final deterministic re-sort.
  const std::size_t num_pairs = pair_index.num_pairs();
  result.pairs.resize(num_pairs);
  std::vector<CommTypeCounters> slot_counters(num_pairs);
  // 0 = cold, 1 = warm-reused, 2 = reclassified (carry telemetry).
  std::vector<std::uint8_t> slot_warmth(num_pairs, 0);
  parallel_for(pool, num_pairs, [&](std::size_t pair_id) {
    CommTypeCounters& counters = slot_counters[pair_id];
    const std::span<const std::size_t> flow_idxs =
        pair_index.positions(pair_id);
    PairClassification pc;
    pc.pair = pair_index.pair(pair_id);
    pc.num_flows = flow_idxs.size();

    // Warm fast path: when the whole window's distinct-size count agrees
    // with the carried pre-refinement type, skip the BOCD step division.
    // A one-cluster window provably yields Mode(N_k) == 1 (every subset of
    // a single tolerance cluster is a single cluster), so reusing PP is
    // exact; a multi-size window reusing DP matches the cold mode on any
    // steady DP pair. Disagreement (or a pair with no prior) falls through
    // to the full classification.
    if (carry != nullptr) {
      const auto prior = carry->pre_types.find(pc.pair);
      if (prior != carry->pre_types.end()) {
        std::vector<std::uint64_t> sizes;
        sizes.reserve(flow_idxs.size());
        for (const std::size_t i : flow_idxs) {
          sizes.push_back(view.bytes[i]);
        }
        const std::size_t distinct = count_distinct_sizes(std::move(sizes));
        const CommType evidence =
            distinct <= 1 ? CommType::kPP : CommType::kDP;
        if (evidence == prior->second) {
          pc.pre_refinement_type = prior->second;
          pc.type = pc.pre_refinement_type;
          // BOCD was skipped: no step observations this window (documented
          // work-telemetry difference of the warm path).
          pc.num_steps_observed = 0;
          slot_warmth[pair_id] = 1;
          result.pairs[pair_id] = std::move(pc);
          return;
        }
      }
      slot_warmth[pair_id] = 2;
    }

    // (1)+(2) step division via BOCD over inter-flow intervals.
    std::vector<TimeNs> timestamps;
    timestamps.reserve(flow_idxs.size());
    for (const std::size_t i : flow_idxs) {
      timestamps.push_back(view.start_ns[i]);
    }
    // Unsorted-input fallback: order this pair's flows by time so segments
    // map back to sizes.
    std::span<const std::size_t> ordered = flow_idxs;
    std::vector<std::size_t> ordered_storage;
    if (!trace_sorted &&
        !std::is_sorted(timestamps.begin(), timestamps.end())) {
      std::sort(timestamps.begin(), timestamps.end());
      ordered_storage.assign(flow_idxs.begin(), flow_idxs.end());
      std::stable_sort(ordered_storage.begin(), ordered_storage.end(),
                       [&](std::size_t a, std::size_t b) {
                         return view.start_ns[a] < view.start_ns[b];
                       });
      ordered = ordered_storage;
    }

    const auto segment_starts = segment_by_gaps(timestamps, config_.segmenter,
                                                &counters.segmenter);
    pc.num_steps_observed = segment_starts.size();

    // Pair-level size clusters with tolerance merging; clusters carrying
    // less than min_size_share of the pair's flows are collector artifacts
    // (partial records) and are ignored below — see CommTypeConfig.
    struct SizeCluster {
      std::uint64_t base;
      std::uint64_t max;
      std::size_t count = 0;
      bool kept = true;
    };
    std::vector<SizeCluster> clusters;
    {
      std::vector<std::uint64_t> sizes;
      sizes.reserve(ordered.size());
      for (const std::size_t i : ordered) {
        sizes.push_back(view.bytes[i]);
      }
      std::sort(sizes.begin(), sizes.end());
      for (const std::uint64_t s : sizes) {
        if (clusters.empty() ||
            static_cast<double>(s) >
                static_cast<double>(clusters.back().base) *
                    (1.0 + config_.size_tolerance)) {
          clusters.push_back({s, s, 1, true});
        } else {
          clusters.back().max = s;
          ++clusters.back().count;
        }
      }
      const double min_count =
          config_.min_size_share * static_cast<double>(sizes.size());
      for (SizeCluster& c : clusters) {
        c.kept = static_cast<double>(c.count) >= min_count;
        if (!c.kept) {
          ++counters.artifact_size_clusters;
          counters.artifact_flows += c.count;
        }
      }
    }
    const auto cluster_of = [&](std::uint64_t size) -> std::size_t {
      // Last cluster whose base <= size; sizes were all in the build set.
      const auto it = std::upper_bound(
          clusters.begin(), clusters.end(), size,
          [](std::uint64_t s, const SizeCluster& c) { return s < c.base; });
      return static_cast<std::size_t>(it - clusters.begin()) - 1;
    };

    // (3) distinct (non-artifact) flow sizes per step; Mode over steps.
    std::vector<std::int64_t> distinct_per_step;
    distinct_per_step.reserve(segment_starts.size());
    // Distinct clusters per segment via epoch stamping: clusters are few
    // and dense, so a stamp array beats a hash set and stays deterministic
    // (only the count is used).
    std::vector<std::uint32_t> cluster_stamp(clusters.size(), 0);
    std::uint32_t epoch = 0;
    for (std::size_t s = 0; s < segment_starts.size(); ++s) {
      const std::size_t seg_begin = segment_starts[s];
      const std::size_t seg_end = s + 1 < segment_starts.size()
                                      ? segment_starts[s + 1]
                                      : ordered.size();
      ++epoch;
      std::size_t seen = 0;
      for (std::size_t i = seg_begin; i < seg_end; ++i) {
        const std::size_t c = cluster_of(view.bytes[ordered[i]]);
        if (clusters[c].kept && cluster_stamp[c] != epoch) {
          cluster_stamp[c] = epoch;
          ++seen;
        }
      }
      // A segment of pure artifacts carries no size evidence: skip it.
      if (seen != 0) {
        distinct_per_step.push_back(static_cast<std::int64_t>(seen));
      } else {
        ++counters.artifact_segments;
      }
    }
    const std::int64_t mode_distinct =
        distinct_per_step.empty() ? 1 : stats::mode(distinct_per_step);
    pc.pre_refinement_type =
        mode_distinct == 1 ? CommType::kPP : CommType::kDP;
    pc.type = pc.pre_refinement_type;
    result.pairs[pair_id] = std::move(pc);
  });

  // Fold the per-pair telemetry in pair-id order (integer event counts, so
  // the totals equal the old in-loop accumulation exactly).
  for (std::size_t pair_id = 0; pair_id < num_pairs; ++pair_id) {
    result.counters += slot_counters[pair_id];
    if (carry != nullptr) {
      if (slot_warmth[pair_id] == 1) ++carry->pairs_reused;
      if (slot_warmth[pair_id] == 2) ++carry->pairs_reclassified;
    }
  }

  // ---- DP graph + DFS components (Alg. 2 lines 13-16) ----
  // Built from pre-refinement DP edges; flipping PP->DP inside a component
  // never changes connectivity, so components are final.
  std::unordered_map<GpuId, std::size_t> node_index;
  std::vector<GpuId> nodes;
  auto intern = [&](GpuId g) {
    const auto [it, inserted] = node_index.emplace(g, nodes.size());
    if (inserted) nodes.push_back(g);
    return it->second;
  };
  for (const PairClassification& p : result.pairs) {
    intern(p.pair.first);
    intern(p.pair.second);
  }
  std::vector<std::vector<std::size_t>> adj(nodes.size());
  for (const PairClassification& p : result.pairs) {
    if (p.pre_refinement_type != CommType::kDP) continue;
    const std::size_t u = node_index.at(p.pair.first);
    const std::size_t v = node_index.at(p.pair.second);
    adj[u].push_back(v);
    adj[v].push_back(u);
  }

  std::vector<bool> visited(nodes.size(), false);
  std::vector<std::size_t> component_of(nodes.size(), SIZE_MAX);
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    if (visited[n] || adj[n].empty()) continue;
    const auto comp = dfs_component(n, adj, visited);
    std::vector<GpuId> gpus;
    gpus.reserve(comp.size());
    for (const std::size_t idx : comp) {
      component_of[idx] = result.dp_components.size();
      gpus.push_back(nodes[idx]);
    }
    std::sort(gpus.begin(), gpus.end());
    result.dp_components.push_back(std::move(gpus));
  }

  if (config_.refine) {
    for (PairClassification& p : result.pairs) {
      if (p.type != CommType::kPP) continue;
      const std::size_t cu = component_of[node_index.at(p.pair.first)];
      const std::size_t cv = component_of[node_index.at(p.pair.second)];
      if (cu != SIZE_MAX && cu == cv) {
        p.type = CommType::kDP;
        ++result.counters.refinement_flips;
      }
    }
  }

  // Per-flow types via dense pair-id lookup: result.pairs is still in
  // pair-id order here (the deterministic re-sort below breaks that).
  if (flow_types != nullptr) {
    std::vector<CommType> type_of_pair(result.pairs.size());
    for (std::size_t id = 0; id < result.pairs.size(); ++id) {
      type_of_pair[id] = result.pairs[id].type;
    }
    const std::span<const std::uint32_t> pair_of_flow =
        pair_index.pair_of_flow();
    flow_types->resize(view.size());
    for (std::size_t i = 0; i < view.size(); ++i) {
      (*flow_types)[i] = type_of_pair[pair_of_flow[i]];
    }
  }

  // Refresh the carry with this window's evidence. Pairs absent from the
  // window lose their prior (an idle-then-returning pair is re-classified
  // from scratch — conservative, never stale).
  if (carry != nullptr) {
    carry->pre_types.clear();
    carry->pre_types.reserve(result.pairs.size());
    for (const PairClassification& p : result.pairs) {
      carry->pre_types.emplace(p.pair, p.pre_refinement_type);
    }
  }

  // Deterministic output order.
  std::sort(result.pairs.begin(), result.pairs.end(),
            [](const PairClassification& a, const PairClassification& b) {
              return a.pair < b.pair;
            });
  std::sort(result.dp_components.begin(), result.dp_components.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });

  CommTypeMetrics& metrics = comm_type_metrics();
  metrics.pairs.inc(result.pairs.size());
  metrics.artifact_clusters.inc(result.counters.artifact_size_clusters);
  metrics.artifact_flows.inc(result.counters.artifact_flows);
  metrics.artifact_segments.inc(result.counters.artifact_segments);
  metrics.refinement_flips.inc(result.counters.refinement_flips);
  return result;
}

}  // namespace llmprism
