// Reproduces §V-C and Fig. 4: training-timeline reconstruction accuracy on
// a 1,024-GPU job, scored against the oracle (profiler-equivalent) step
// boundaries, plus the Fig. 4-style per-rank timeline visualization.
//
// Paper result: reconstruction error within 0.3%.
#include <cstdio>

#include "bench_util.hpp"
#include "llmprism/baseline/eval.hpp"
#include "llmprism/core/comm_type.hpp"
#include "llmprism/core/render.hpp"
#include "llmprism/core/timeline.hpp"

using namespace llmprism;
using namespace llmprism::bench;

int main() {
  std::printf(
      "=== Fig. 4 / SS V-C: timeline reconstruction on a 1,024-GPU job "
      "===\n\n");

  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 128,
                  .gpus_per_machine = 8,
                  .machines_per_leaf = 16,
                  .num_spines = 8};
  cfg.seed = 4242;
  cfg.jobs.push_back({thousand_gpu_job(8, 16, 8, false, 60), {}});
  // Light collection noise: the paper's production collector is imperfect.
  cfg.noise.drop_rate = 0.005;
  cfg.noise.time_jitter = 50 * kMicrosecond;

  Stopwatch sim_watch;
  const ClusterSimResult sim = run_cluster_sim(cfg);
  std::printf("simulated %zu flows over %.0f s (%.1f s)\n", sim.trace.size(),
              to_seconds(sim.trace.span().length()), sim_watch.seconds());

  Stopwatch watch;
  const CommTypeIdentifier identifier;
  const auto comm = identifier.identify(sim.trace);
  const TimelineReconstructor reconstructor;
  const auto timelines =
      reconstructor.reconstruct_all(sim.trace, comm.types());
  const double elapsed = watch.seconds();

  const auto score = score_timelines(std::span(timelines), sim.jobs[0]);
  std::printf("analysis wall time        : %.1f s\n", elapsed);
  std::printf("GPU ranks reconstructed   : %zu\n", timelines.size());
  std::printf("ranks scored vs oracle    : %zu\n", score.ranks_scored);
  std::printf("step boundaries matched   : %.1f%%  (%zu / %zu)\n",
              100.0 * score.matched_fraction(), score.steps_matched,
              score.steps_true_total);
  std::printf("mean step-duration error  : %.4f%%   (paper: < 0.3%%)\n",
              100.0 * score.mean_duration_error);
  std::printf("max  step-duration error  : %.4f%%\n",
              100.0 * score.max_duration_error);
  std::printf("mean boundary offset      : %.2f ms\n\n",
              1e3 * score.mean_boundary_offset_s);

  // Fig. 4-style visualization: one pipeline's 8 stages over two steps.
  // Pick the ranks of the first PP chain: with tp=8 and Megatron order,
  // stage s of lane (t=0, d=0) is rank s*dp*tp = s*128.
  std::vector<GpuTimeline> lanes;
  for (std::uint32_t s = 0; s < 8; ++s) {
    const GpuId gpu = sim.jobs[0].gpus[static_cast<std::size_t>(s) * 128];
    for (const GpuTimeline& t : timelines) {
      if (t.gpu == gpu) lanes.push_back(t);
    }
  }
  RenderOptions options;
  options.width = 110;
  if (!lanes.empty() && lanes.front().steps.size() > 4) {
    options.window = {lanes.front().steps[2].begin,
                      lanes.front().steps[4].end};
  }
  std::printf(
      "reconstructed timeline, pipeline stages 0..7 of one lane (2 "
      "steps):\n%s",
      render_timeline_chart(std::span(lanes), options).c_str());

  const bool ok =
      score.mean_duration_error < 0.003 && score.matched_fraction() > 0.95;
  std::printf("\nreproduction %s: error %s 0.3%%\n", ok ? "OK" : "FAILED",
              score.mean_duration_error < 0.003 ? "<" : ">=");
  return ok ? 0 : 1;
}
