# Empty compiler generated dependencies file for gen_trace.
# This may be replaced when dependencies are built.
