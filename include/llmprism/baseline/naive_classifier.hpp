// Ablation baselines for communication-type identification, stripped of the
// step-division + mode machinery of Alg. 2:
//  * GlobalDistinctSizeClassifier — counts distinct sizes over the whole
//    window (no per-step mode): one collector glitch anywhere flips a pair.
//  * VolumeThresholdClassifier — "DP is big, PP is small": a hand-tuned
//    byte threshold on the mean flow size. Breaks whenever a tenant's
//    activation size rivals its gradient-bucket size.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "llmprism/common/comm_type.hpp"
#include "llmprism/common/ids.hpp"
#include "llmprism/flow/trace.hpp"

namespace llmprism {

struct GlobalDistinctSizeConfig {
  double size_tolerance = 0.05;  ///< same clustering tolerance as Alg. 2
};

/// Classify every pair in `job_trace`: DP iff > 1 distinct size overall.
[[nodiscard]] std::unordered_map<GpuPair, CommType>
classify_by_global_distinct_sizes(const FlowTrace& job_trace,
                                  const GlobalDistinctSizeConfig& config = {});

struct VolumeThresholdConfig {
  std::uint64_t dp_threshold_bytes = 64ull << 20;  ///< mean size above => DP
};

/// Classify every pair in `job_trace` by mean flow size.
[[nodiscard]] std::unordered_map<GpuPair, CommType>
classify_by_volume_threshold(const FlowTrace& job_trace,
                             const VolumeThresholdConfig& config = {});

}  // namespace llmprism
