
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallelism/config.cpp" "src/parallelism/CMakeFiles/llmprism_parallelism.dir/config.cpp.o" "gcc" "src/parallelism/CMakeFiles/llmprism_parallelism.dir/config.cpp.o.d"
  "/root/repo/src/parallelism/placement.cpp" "src/parallelism/CMakeFiles/llmprism_parallelism.dir/placement.cpp.o" "gcc" "src/parallelism/CMakeFiles/llmprism_parallelism.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/llmprism_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/llmprism_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/llmprism_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
