// 3D-parallel training configuration and rank <-> coordinate mapping.
//
// A job with tensor parallel size `tp`, pipeline parallel size `pp` and data
// parallel size `dp` has world size tp*dp*pp. Each rank r maps to a
// coordinate (tp_idx, dp_idx, pp_idx):
//   - the TP group of r: ranks sharing (dp_idx, pp_idx)  — intra-machine
//   - the DP group of r: ranks sharing (tp_idx, pp_idx)  — collective sync
//   - the PP group of r: ranks sharing (tp_idx, dp_idx)  — pipeline stages
#pragma once

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "llmprism/common/ids.hpp"

namespace llmprism {

/// Axis nesting order for rank numbering, innermost first.
/// kTpDpPp is the Megatron-LM default (tp fastest, pp slowest).
enum class RankOrder { kTpDpPp, kTpPpDp };

struct ParallelismConfig {
  std::uint32_t tp = 1;
  std::uint32_t dp = 1;
  std::uint32_t pp = 1;
  std::uint32_t micro_batches = 4;  ///< micro-batches per training step
  RankOrder order = RankOrder::kTpDpPp;

  [[nodiscard]] constexpr std::uint32_t world_size() const {
    return tp * dp * pp;
  }

  /// Throws std::invalid_argument on a zero-sized axis or zero micro-batches.
  void validate() const {
    if (tp == 0 || dp == 0 || pp == 0) {
      throw std::invalid_argument("parallelism: tp/dp/pp must all be > 0");
    }
    if (micro_batches == 0) {
      throw std::invalid_argument("parallelism: micro_batches must be > 0");
    }
  }

  friend std::ostream& operator<<(std::ostream& os,
                                  const ParallelismConfig& c) {
    return os << "tp=" << c.tp << " dp=" << c.dp << " pp=" << c.pp
              << " mb=" << c.micro_batches;
  }
};

/// Position of a rank along the three parallelism axes.
struct RankCoord {
  std::uint32_t tp_idx = 0;
  std::uint32_t dp_idx = 0;
  std::uint32_t pp_idx = 0;

  friend constexpr bool operator==(const RankCoord&,
                                   const RankCoord&) = default;
};

/// Bidirectional rank <-> coordinate mapping plus group enumeration.
class RankMap {
 public:
  explicit RankMap(ParallelismConfig config);

  [[nodiscard]] const ParallelismConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t world_size() const {
    return config_.world_size();
  }

  [[nodiscard]] RankCoord coord_of(RankId rank) const;
  [[nodiscard]] RankId rank_of(RankCoord coord) const;

  /// Ranks sharing (dp_idx, pp_idx), ordered by tp_idx.
  [[nodiscard]] std::vector<RankId> tp_group(std::uint32_t dp_idx,
                                             std::uint32_t pp_idx) const;
  /// Ranks sharing (tp_idx, pp_idx), ordered by dp_idx.
  [[nodiscard]] std::vector<RankId> dp_group(std::uint32_t tp_idx,
                                             std::uint32_t pp_idx) const;
  /// Ranks sharing (tp_idx, dp_idx), ordered by pp_idx (= pipeline stages).
  [[nodiscard]] std::vector<RankId> pp_group(std::uint32_t tp_idx,
                                             std::uint32_t dp_idx) const;

  /// All DP groups (tp*pp of them), each a vector of dp ranks.
  [[nodiscard]] std::vector<std::vector<RankId>> all_dp_groups() const;
  /// All PP groups (tp*dp of them), each a vector of pp stage ranks.
  [[nodiscard]] std::vector<std::vector<RankId>> all_pp_groups() const;

 private:
  void check_rank(RankId rank) const;
  void check_coord(RankCoord coord) const;

  ParallelismConfig config_;
};

}  // namespace llmprism
