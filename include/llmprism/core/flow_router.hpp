// Flow routing: attribute every flow of a cluster trace to the recognized
// job that owns its endpoints.
//
// GPU ids are dense (see topology), so the routing table is a flat
// vector indexed by GPU id — one load per lookup instead of a hash probe
// per flow. Routing scans the trace once and preserves its order, which
// is what lets the per-job pipeline skip re-sorting: a sorted input
// yields per-job traces that are born sorted (and their FlowTrace
// sortedness cache knows it).
//
// A flow is routed by its src GPU; when the src is unattributed (e.g. a
// half-recognized job, or a recognizer that excluded the src) the dst is
// tried before declaring the flow unattributed — a src-only lookup would
// silently drop flows whose dst a recognized job owns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "llmprism/core/job_recognition.hpp"
#include "llmprism/flow/trace.hpp"
#include "llmprism/flow/view.hpp"

namespace llmprism {

class FlowRouter {
 public:
  /// No job owns the GPU.
  static constexpr std::size_t kUnattributed = SIZE_MAX;

  /// Intern the jobs' GPU sets into the dense table. When two jobs claim
  /// one GPU (the recognizer never produces this), the lower job index
  /// wins.
  explicit FlowRouter(std::span<const RecognizedJob> jobs);

  /// Job index owning `gpu`, or kUnattributed.
  [[nodiscard]] std::size_t job_of(GpuId gpu) const {
    const std::size_t g = static_cast<std::size_t>(gpu.value());
    return g < job_of_gpu_.size() ? job_of_gpu_[g] : kUnattributed;
  }

  struct Result {
    /// Per-job flows, input order preserved within each job.
    std::vector<FlowTrace> job_traces;
    std::uint64_t flows_routed = 0;
    /// Of flows_routed: flows whose src was unattributed and that were
    /// recovered through the dst lookup.
    std::uint64_t flows_routed_via_dst = 0;
    std::uint64_t flows_unattributed = 0;
  };

  /// Route every flow of `trace` to its job in one ordered pass.
  [[nodiscard]] Result route(const FlowTrace& trace) const;

  struct ColumnarResult {
    /// Per-job columns, input order preserved within each job (born sorted
    /// when the input view is sorted — a subsequence of a sorted sequence).
    std::vector<FlowColumns> job_columns;
    std::uint64_t flows_routed = 0;
    std::uint64_t flows_routed_via_dst = 0;
    std::uint64_t flows_unattributed = 0;
  };

  /// Columnar routing: two passes over the src/dst columns (count per job,
  /// prefix-size the targets, then gather) without ever materializing a
  /// FlowRecord.
  [[nodiscard]] ColumnarResult route(const FlowView& view) const;

  [[nodiscard]] std::size_t num_jobs() const { return num_jobs_; }

 private:
  std::size_t num_jobs_ = 0;
  /// Dense GPU id -> job index (kUnattributed when unowned).
  std::vector<std::size_t> job_of_gpu_;
};

}  // namespace llmprism
