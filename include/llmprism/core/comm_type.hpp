// Communication-type identification (paper Alg. 2, §IV-B).
//
// For every communication pair of a job:
//  1. compute inter-flow intervals,
//  2. divide the pair's flows into training steps with BOCD over the
//     interval sequence (change-point when P(r=0) > 0.95),
//  3. count the distinct flow sizes N_k per step; the pair is PP iff
//     Mode(N_k) == 1 (PP messages have one consistent size; DP collectives
//     split into several flows of varying sizes),
//  4. noise refinement: DP membership is transitive, so every pair whose
//     endpoints land in the same connected component of the DP graph is
//     flipped to DP (recovers DP pairs whose bursts the collector
//     truncated to a single size).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "llmprism/bocd/bocd.hpp"
#include "llmprism/common/comm_type.hpp"
#include "llmprism/common/ids.hpp"
#include "llmprism/flow/trace.hpp"
#include "llmprism/flow/view.hpp"

namespace llmprism {

class ThreadPool;

struct CommTypeConfig {
  /// Gap segmenter (BOCD) settings for step division over inter-flow
  /// intervals.
  SegmenterConfig segmenter;
  /// Run the DP-transitivity refinement (Table I's ablation toggle).
  bool refine = true;
  /// Flow sizes within this relative tolerance count as one distinct size
  /// (absorbs collector size-reporting jitter; DP buckets differ by far
  /// more).
  double size_tolerance = 0.05;
  /// Size clusters carrying less than this fraction of a pair's flows are
  /// collector artifacts (partially recorded flows), not bucket structure,
  /// and are ignored when counting distinct sizes. Without this, ONE
  /// partial record can flip a PP pair to DP, whose false edge then bridges
  /// two DP components and the refinement flips every PP pair between the
  /// two stages (a transitivity cascade). Real DP buckets each carry far
  /// more than this share.
  double min_size_share = 0.03;
};

struct PairClassification {
  GpuPair pair;
  CommType type = CommType::kPP;
  /// Classification before refinement (equal to `type` when refine=false or
  /// the refinement did not touch the pair).
  CommType pre_refinement_type = CommType::kPP;
  std::size_t num_flows = 0;
  std::size_t num_steps_observed = 0;
};

/// Deterministic work/outcome counters of one identify() call — what the
/// stage filtered or repaired, which otherwise vanishes silently. Event
/// counts only (no wall clock): totals are thread-count-invariant and are
/// folded into PrismReport::telemetry.
struct CommTypeCounters {
  /// BOCD step-division work across the job's pairs.
  SegmenterStats segmenter;
  /// Rare-size clusters judged collector artifacts (below min_size_share)
  /// and excluded from distinct-size counting.
  std::uint64_t artifact_size_clusters = 0;
  /// Flows inside those artifact clusters.
  std::uint64_t artifact_flows = 0;
  /// Segments that carried only artifact sizes and contributed no
  /// distinct-size evidence.
  std::uint64_t artifact_segments = 0;
  /// PP pairs flipped to DP by the transitivity refinement.
  std::uint64_t refinement_flips = 0;

  CommTypeCounters& operator+=(const CommTypeCounters& other) {
    segmenter += other.segmenter;
    artifact_size_clusters += other.artifact_size_clusters;
    artifact_flows += other.artifact_flows;
    artifact_segments += other.artifact_segments;
    refinement_flips += other.refinement_flips;
    return *this;
  }
};

/// Cross-window warm priors for one job's pair classifications, carried by
/// PrismSession. identify() consults the previous window's pre-refinement
/// type per pair and re-runs the full BOCD step division only for pairs
/// that are new or whose whole-window distinct-size count contradicts the
/// prior (PP pairs must show exactly one distinct size; DP pairs several).
/// The DP-transitivity refinement always re-runs, so the final types and
/// dp_components of a consistent window are field-for-field what the cold
/// path would produce; only the work telemetry (BOCD counts,
/// num_steps_observed of reused pairs) shrinks.
struct CommTypeCarry {
  /// pair -> pre-refinement type from the last full classification.
  std::unordered_map<GpuPair, CommType> pre_types;
  /// Per-call outcome (reset by each warm identify() call).
  std::uint64_t pairs_reused = 0;
  std::uint64_t pairs_reclassified = 0;
};

struct CommTypeResult {
  std::vector<PairClassification> pairs;
  /// Connected components of the DP graph — the recovered DP groups
  /// (GPU ids, ascending within each component).
  std::vector<std::vector<GpuId>> dp_components;
  /// Self-telemetry of the identification run.
  CommTypeCounters counters;

  [[nodiscard]] std::unordered_map<GpuPair, CommType> types() const;
};

class CommTypeIdentifier {
 public:
  explicit CommTypeIdentifier(CommTypeConfig config = {});

  /// Classify every communication pair appearing in `job_trace` (the flows
  /// of one recognized job, sorted by time). Builds the pair index itself.
  [[nodiscard]] CommTypeResult identify(const FlowTrace& job_trace) const;

  /// Same, over a prebuilt CSR pair index for `job_trace` (built once per
  /// job and shared with timeline reconstruction and DP-flow collection).
  /// When `flow_types` is non-null it receives, per trace position, the
  /// final (post-refinement) type of that flow's pair — the dense
  /// replacement for probing an unordered_map per flow. On a sorted trace
  /// no per-pair re-sorting happens: CSR positions are already
  /// chronological.
  ///
  /// When `carry` is non-null, the previous window's classifications serve
  /// as warm priors (see CommTypeCarry); the carry is updated in place with
  /// this window's pre-refinement types. Null carry is the cold path,
  /// bit-identical to before the session layer existed.
  [[nodiscard]] CommTypeResult identify(
      const FlowTrace& job_trace, const PairIndex& index,
      std::vector<CommType>* flow_types = nullptr,
      CommTypeCarry* carry = nullptr) const;

  /// Columnar core: identical semantics over a non-owning SoA view (the
  /// other overloads delegate here after a transpose). Reads only the
  /// start_ns and bytes columns — never materializes a FlowRecord.
  ///
  /// When `pool` is non-null the per-pair classification fans out across
  /// it. Every pair writes a pre-sized slot indexed by its dense pair id
  /// and counters are folded in pair-id order afterwards, so the result is
  /// bit-identical at any thread count (and to `pool == nullptr`).
  [[nodiscard]] CommTypeResult identify(
      const FlowView& view, const PairIndex& index,
      std::vector<CommType>* flow_types = nullptr,
      CommTypeCarry* carry = nullptr, ThreadPool* pool = nullptr) const;

  /// Count distinct flow sizes under the configured relative tolerance.
  /// Exposed for tests and the ablation bench.
  [[nodiscard]] std::size_t count_distinct_sizes(
      std::vector<std::uint64_t> sizes) const;

 private:
  CommTypeConfig config_;
};

}  // namespace llmprism
