// Evaluation scorers: compare LLMPrism's outputs against simulator ground
// truth. These compute the paper's metrics:
//  * §V-A — job recognition: jobs found vs. true jobs (exact GPU-set match),
//  * §V-B / Table I — parallelism identification accuracy: correctly
//    classified pairs / total pairs,
//  * §V-C — timeline reconstruction error: relative step-duration error
//    against the oracle (profiler-equivalent) boundaries.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "llmprism/common/comm_type.hpp"
#include "llmprism/core/comm_type.hpp"
#include "llmprism/core/job_recognition.hpp"
#include "llmprism/core/timeline.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {

struct JobRecognitionScore {
  std::size_t true_jobs = 0;        ///< network-visible true jobs
  std::size_t recognized_jobs = 0;
  std::size_t exact_matches = 0;    ///< recognized GPU set == true GPU set
  std::size_t merged_or_split = 0;  ///< recognized jobs with no exact match

  [[nodiscard]] bool perfect() const {
    return exact_matches == true_jobs && recognized_jobs == true_jobs;
  }
};

/// Match recognized jobs to true jobs by exact GPU-set equality.
[[nodiscard]] JobRecognitionScore score_job_recognition(
    const JobRecognitionResult& result, std::span<const JobTruth> truth);

struct CommTypeScore {
  std::size_t total_pairs = 0;      ///< truth pairs that appear in the result
  std::size_t correct = 0;
  std::size_t dp_as_pp = 0;         ///< truth DP classified PP
  std::size_t pp_as_dp = 0;         ///< truth PP classified DP
  std::size_t missing_pairs = 0;    ///< truth pairs absent from the result

  [[nodiscard]] double accuracy() const {
    return total_pairs == 0
               ? 1.0
               : static_cast<double>(correct) /
                     static_cast<double>(total_pairs);
  }
};

/// Score pair classifications against a job's true pair types.
/// With `use_pre_refinement`, scores the pre-refinement labels — the
/// "LLMPrism w/o refinement" row of Table I.
[[nodiscard]] CommTypeScore score_comm_type(
    std::span<const PairClassification> pairs, const JobTruth& truth,
    bool use_pre_refinement = false);

struct TimelineScore {
  std::size_t ranks_scored = 0;
  std::size_t steps_matched = 0;       ///< reconstructed steps matched to truth
  std::size_t steps_true_total = 0;    ///< scoreable truth steps
  std::size_t steps_reconstructed_total = 0;  ///< all reconstructed steps
  double mean_duration_error = 0.0;    ///< mean relative step-duration error
  double max_duration_error = 0.0;
  double mean_boundary_offset_s = 0.0; ///< |reconstructed - true| boundary gap

  /// Recall: truth boundaries recovered.
  [[nodiscard]] double matched_fraction() const {
    return steps_true_total == 0
               ? 0.0
               : static_cast<double>(steps_matched) /
                     static_cast<double>(steps_true_total);
  }
  /// Reconstructed steps with no matching truth boundary (over-segmentation).
  [[nodiscard]] std::size_t spurious_steps() const {
    return steps_reconstructed_total >= steps_matched
               ? steps_reconstructed_total - steps_matched
               : 0;
  }
};

/// Score reconstructed timelines against per-rank true DP-burst boundaries.
/// For each rank, every truth boundary (its DP group's per-step dp_end) is
/// matched to the nearest reconstructed step end; relative duration error
/// is computed between consecutive matched boundaries.
[[nodiscard]] TimelineScore score_timelines(
    std::span<const GpuTimeline> timelines, const JobTruth& truth);

/// Generic pair-map scorer for the ablation baselines.
[[nodiscard]] CommTypeScore score_comm_type_map(
    const std::unordered_map<GpuPair, CommType>& types, const JobTruth& truth);

}  // namespace llmprism
