# Empty compiler generated dependencies file for llmprism_flow.
# This may be replaced when dependencies are built.
