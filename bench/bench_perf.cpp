// Microbenchmarks backing the paper's "lightweight / near-zero overhead"
// claim (§I, §VI): LLMPrism runs out-of-band on mirrored flows, so the only
// cost that matters is the analysis side's throughput — measured here with
// google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "llmprism/bocd/bocd.hpp"
#include "llmprism/common/disjoint_set.hpp"
#include "llmprism/common/rng.hpp"
#include "llmprism/core/comm_type.hpp"
#include "llmprism/core/diagnosis.hpp"
#include "llmprism/core/job_recognition.hpp"
#include "llmprism/core/monitor.hpp"
#include "llmprism/core/prism.hpp"
#include "llmprism/core/timeline.hpp"
#include "llmprism/export/journal.hpp"
#include "llmprism/export/perfetto.hpp"
#include "llmprism/export/series.hpp"
#include "llmprism/export/view.hpp"
#include "llmprism/flow/io.hpp"
#include "llmprism/flow/lft.hpp"
#include "llmprism/flow/view.hpp"
#include "llmprism/obs/metrics.hpp"
#include "llmprism/obs/trace_span.hpp"
#include "llmprism/serve/queue.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

ClusterSimResult& shared_cluster() {
  static ClusterSimResult result = [] {
    ClusterSimConfig cfg;
    cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                    .machines_per_leaf = 4, .num_spines = 2};
    cfg.seed = 77;
    JobSimConfig job;
    job.parallelism = {.tp = 8, .dp = 8, .pp = 2, .micro_batches = 4};
    job.num_steps = 20;
    cfg.jobs.push_back({job, {}});
    return run_cluster_sim(cfg);
  }();
  return result;
}

void BM_BocdObserve(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 4096; ++i) xs.push_back(rng.normal(5.0, 0.2));
  BocdDetector detector;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.observe(xs[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BocdObserve);

// The segmentation fast path: a whole series through the SoA kernel in one
// observe_batch() call on the pooled detector — what segment_by_gaps
// actually runs per series. Compare against BM_BocdObserve (the per-call
// loop) for the batch entry's overhead, which should be ~zero since both
// share one kernel.
void BM_BocdObserveBatch(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 4096; ++i) xs.push_back(rng.normal(5.0, 0.2));
  std::vector<BocdReadout> readouts(xs.size());
  for (auto _ : state) {
    BocdDetector& detector = pooled_detector(BocdConfig{});
    detector.observe_batch(xs, readouts);
    benchmark::DoNotOptimize(readouts.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * xs.size()));
}
BENCHMARK(BM_BocdObserveBatch);

void BM_SegmentByGaps(benchmark::State& state) {
  // 50 bursts of 16 flows: the per-pair step-division workload.
  Rng rng(2);
  std::vector<TimeNs> ts;
  TimeNs t = 0;
  for (int b = 0; b < 50; ++b) {
    for (int f = 0; f < 16; ++f) {
      ts.push_back(t);
      t += kMillisecond + static_cast<TimeNs>(rng.uniform(0, 2e5));
    }
    t += 2 * kSecond;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(segment_by_gaps(ts));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * ts.size()));
}
BENCHMARK(BM_SegmentByGaps);

void BM_JobRecognition(benchmark::State& state) {
  const auto& sim = shared_cluster();
  const JobRecognizer recognizer(sim.topology);
  for (auto _ : state) {
    benchmark::DoNotOptimize(recognizer.recognize(sim.trace));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * sim.trace.size()));
  state.counters["flows"] = static_cast<double>(sim.trace.size());
}
BENCHMARK(BM_JobRecognition);

void BM_CommTypeIdentify(benchmark::State& state) {
  const auto& sim = shared_cluster();
  const CommTypeIdentifier identifier;
  for (auto _ : state) {
    benchmark::DoNotOptimize(identifier.identify(sim.trace));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * sim.trace.size()));
}
BENCHMARK(BM_CommTypeIdentify);

void BM_TimelineReconstructAll(benchmark::State& state) {
  const auto& sim = shared_cluster();
  const auto types = CommTypeIdentifier{}.identify(sim.trace).types();
  const TimelineReconstructor reconstructor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reconstructor.reconstruct_all(sim.trace, types));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * sim.trace.size()));
}
BENCHMARK(BM_TimelineReconstructAll);

void BM_PrismEndToEnd(benchmark::State& state) {
  const auto& sim = shared_cluster();
  const Prism prism(sim.topology);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prism.analyze(sim.trace));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * sim.trace.size()));
  state.counters["flows"] = static_cast<double>(sim.trace.size());
}
BENCHMARK(BM_PrismEndToEnd);

// --- columnar stage benches ------------------------------------------------
// The analysis plane's hot kernels over the shared single-job trace, each
// isolated on the FlowView it consumes in Prism::analyze_sorted. Together
// with BM_PrismEndToEnd and BM_PrismView these regenerate EXPERIMENTS.md's
// per-stage overhead table from one bench run.

struct StageFixture {
  FlowColumns columns;               ///< sorted SoA of the shared trace
  PairIndex index;                   ///< CSR pair index over columns
  std::vector<CommType> flow_types;  ///< final type per trace position
  FlowColumns dp_flows;              ///< DP-only rows (k-sigma input)
};

const StageFixture& stage_fixture() {
  static const StageFixture fixture = [] {
    StageFixture f;
    FlowTrace sorted = shared_cluster().trace;
    sorted.sort();
    f.columns = FlowColumns(sorted);
    const FlowView view = f.columns.view();
    f.index = PairIndex(view);
    benchmark::DoNotOptimize(
        CommTypeIdentifier{}.identify(view, f.index, &f.flow_types));
    for (std::size_t i = 0; i < view.size(); ++i) {
      // An in-order subsequence of a sorted view stays sorted (the
      // FlowColumns default), so no settle pass is needed.
      if (f.flow_types[i] == CommType::kDP) f.dp_flows.append_row(view, i);
    }
    return f;
  }();
  return fixture;
}

// End-to-end over the FlowView entry point (the mapped-LFT path): identical
// work to BM_PrismEndToEnd minus the AoS->SoA transpose per call.
void BM_PrismView(benchmark::State& state) {
  const auto& sim = shared_cluster();
  const Prism prism(sim.topology);
  const FlowView view = stage_fixture().columns.view();
  for (auto _ : state) {
    benchmark::DoNotOptimize(prism.analyze(view));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * view.size()));
  state.counters["flows"] = static_cast<double>(view.size());
}
BENCHMARK(BM_PrismView);

// Radix-partitioned CSR pair-index build (counting pass + prefix sum +
// stable scatter).
void BM_StagePairIndex(benchmark::State& state) {
  const FlowView view = stage_fixture().columns.view();
  for (auto _ : state) {
    const PairIndex index(view);
    benchmark::DoNotOptimize(index.num_flows());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * view.size()));
  state.counters["flows"] = static_cast<double>(view.size());
}
BENCHMARK(BM_StagePairIndex);

// Comm-type classification over the prebuilt index, including the per-flow
// type fill (exactly what the per-job fan-out runs).
void BM_StageCommType(benchmark::State& state) {
  const StageFixture& f = stage_fixture();
  const FlowView view = f.columns.view();
  const CommTypeIdentifier identifier;
  std::vector<CommType> flow_types;
  for (auto _ : state) {
    benchmark::DoNotOptimize(identifier.identify(view, f.index, &flow_types));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * view.size()));
  state.counters["flows"] = static_cast<double>(view.size());
}
BENCHMARK(BM_StageCommType);

// Timeline reconstruction from precomputed per-flow types: the columnar
// event scan, per-GPU counting gather, and BOCD step segmentation.
void BM_StageTimeline(benchmark::State& state) {
  const StageFixture& f = stage_fixture();
  const FlowView view = f.columns.view();
  const TimelineReconstructor reconstructor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reconstructor.reconstruct_all(view, f.flow_types, nullptr, {}));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * view.size()));
  state.counters["flows"] = static_cast<double>(view.size());
}
BENCHMARK(BM_StageTimeline);

// Columnar k-sigma switch-bandwidth extraction over the DP-only rows
// (per-switch sample gather across the CSR hop columns + outlier rule).
void BM_StageKSigma(benchmark::State& state) {
  const StageFixture& f = stage_fixture();
  const FlowView dp_view = f.dp_flows.view();
  const Diagnoser diagnoser;
  for (auto _ : state) {
    benchmark::DoNotOptimize(diagnoser.switch_bandwidth(dp_view));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * dp_view.size()));
  state.counters["dp_flows"] = static_cast<double>(dp_view.size());
}
BENCHMARK(BM_StageKSigma);

// --- daemon ingest queue ---------------------------------------------------
// The two shard ingest queues (serve/queue.hpp) head to head: N producers
// (first arg) against one consumer. The second arg is the queue capacity:
// 64 is the daemon default, where producers outrun the consumer and the
// full/park path dominates; 32768 holds the whole run, so pushes never
// block and the measurement isolates the uncontended fast path (one CAS
// for the ring vs a lock round-trip for the deque) — the common case in a
// daemon whose analysis keeps up. items_per_second is end-to-end transfer
// throughput.
void BM_ServeQueue(benchmark::State& state, serve::QueueImpl impl) {
  const auto producers = static_cast<std::size_t>(state.range(0));
  const auto capacity = static_cast<std::size_t>(state.range(1));
  constexpr std::uint64_t kTotalItems = 1 << 15;
  const std::uint64_t per_producer = kTotalItems / producers;
  const std::uint64_t total = per_producer * producers;
  for (auto _ : state) {
    const auto queue = serve::make_queue<std::uint64_t>(impl, capacity);
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&queue, per_producer] {
        for (std::uint64_t i = 0; i < per_producer; ++i) {
          benchmark::DoNotOptimize(queue->push(i));
        }
      });
    }
    std::uint64_t drained = 0;
    for (std::uint64_t n = 0; n < total; ++n) {
      drained += queue->pop().has_value() ? 1 : 0;
    }
    for (std::thread& t : threads) t.join();
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * total));
  state.counters["producers"] = static_cast<double>(producers);
}
BENCHMARK_CAPTURE(BM_ServeQueue, mutex, serve::QueueImpl::kMutex)
    ->Args({1, 64})->Args({2, 64})->Args({4, 64})
    ->Args({1, 32768})->Args({4, 32768})->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeQueue, lockfree, serve::QueueImpl::kLockFree)
    ->Args({1, 64})->Args({2, 64})->Args({4, 64})
    ->Args({1, 32768})->Args({4, 32768})->UseRealTime();

ClusterSimResult& shared_multi_job_cluster() {
  // Eight 16-GPU tenants (2 machines each): the multi-tenant window shape
  // the per-job fan-out is built for.
  static ClusterSimResult result = [] {
    ClusterSimConfig cfg;
    cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                    .machines_per_leaf = 4, .num_spines = 2};
    cfg.seed = 99;
    for (int j = 0; j < 8; ++j) {
      JobSimConfig job;
      job.parallelism = {.tp = 8, .dp = 2, .pp = 1, .micro_batches = 4};
      job.num_steps = 10;
      cfg.jobs.push_back({job, {}});
    }
    return run_cluster_sim(cfg);
  }();
  return result;
}

void BM_PrismAnalyze(benchmark::State& state) {
  const auto& sim = shared_multi_job_cluster();
  PrismConfig cfg;
  cfg.num_threads = static_cast<std::size_t>(state.range(0));
  const Prism prism(sim.topology, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prism.analyze(sim.trace));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * sim.trace.size()));
  state.counters["flows"] = static_cast<double>(sim.trace.size());
  state.counters["jobs"] = 8.0;
  state.counters["threads"] = static_cast<double>(prism.num_threads());
}
// Wall-clock time is the metric: the sweep records the per-job fan-out's
// speedup (items_per_second at 4 threads vs 1) in the bench trajectory.
BENCHMARK(BM_PrismAnalyze)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// The export overhead a prismd daemon would pay per analysis window:
// the report is computed once outside the loop; each iteration renders
// all three job-facing exports (Perfetto trace, OpenMetrics series,
// incident journal) from it.
void BM_FleetExport(benchmark::State& state) {
  const auto& sim = shared_multi_job_cluster();
  MonitorConfig cfg;
  cfg.window = 500 * kMillisecond;
  cfg.reorder_slack = 100 * kMillisecond;
  cfg.prism.num_threads = 1;
  OnlineMonitor monitor(sim.topology, cfg);
  std::vector<MonitorTick> ticks = monitor.ingest(sim.trace);
  if (auto last = monitor.flush()) ticks.push_back(std::move(*last));

  std::size_t bytes = 0;
  for (auto _ : state) {
    PerfettoExporter perfetto;
    JobSeriesCollector series;
    IncidentJournal journal;
    for (const MonitorTick& tick : ticks) {
      const WindowExportView view = export_view(tick);
      perfetto.add_window(view);
      series.add_window(view);
      journal.add_window(view);
    }
    journal.finish();
    std::ostringstream os;
    perfetto.write(os);
    series.write_openmetrics(os);
    journal.write_jsonl(os);
    bytes = os.str().size();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * ticks.size()));
  state.counters["windows"] = static_cast<double>(ticks.size());
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_FleetExport);

void run_monitor_ingest(benchmark::State& state, bool carry_state) {
  // The streaming hot path: the multi-tenant feed delivered in 512-flow
  // batches, windows closing as the watermark advances. Measures the
  // whole ingest loop (batch sort + merge + window slicing + analysis).
  const auto& sim = shared_multi_job_cluster();
  const std::size_t kBatch = 512;
  for (auto _ : state) {
    MonitorConfig cfg;
    // ~6 windows over the feed: enough steady-state windows for the
    // session's caches to matter in the warm variant.
    cfg.window = 500 * kMillisecond;
    cfg.reorder_slack = 100 * kMillisecond;
    cfg.prism.num_threads = 1;
    cfg.carry_state = carry_state;
    OnlineMonitor monitor(sim.topology, cfg);
    std::size_t ticks = 0;
    for (std::size_t at = 0; at < sim.trace.size(); at += kBatch) {
      FlowTrace batch;
      batch.reserve(kBatch);
      for (std::size_t i = at; i < std::min(at + kBatch, sim.trace.size());
           ++i) {
        batch.add(sim.trace[i]);
      }
      ticks += monitor.ingest(batch).size();
    }
    ticks += monitor.flush().has_value() ? 1 : 0;
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * sim.trace.size()));
  state.counters["flows"] = static_cast<double>(sim.trace.size());
}

void BM_MonitorIngest(benchmark::State& state) {
  run_monitor_ingest(state, /*carry_state=*/false);
}
BENCHMARK(BM_MonitorIngest);

// Same feed with the session engine on: steady windows hit the recognition
// fast path and the comm-type priors, so warm must come in measurably
// below the stateless BM_MonitorIngest.
void BM_MonitorIngestWarm(benchmark::State& state) {
  run_monitor_ingest(state, /*carry_state=*/true);
}
BENCHMARK(BM_MonitorIngestWarm);

void BM_FlowMergeSorted(benchmark::State& state) {
  // K sorted runs combined into one sorted trace — the cluster-wide DP
  // merge shape. Arg = number of runs.
  const auto& sim = shared_multi_job_cluster();
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<FlowTrace> runs(k);
  for (std::size_t i = 0; i < sim.trace.size(); ++i) {
    runs[i % k].add(sim.trace[i]);
  }
  for (FlowTrace& run : runs) run.sort();
  for (auto _ : state) {
    std::vector<FlowTrace> copy = runs;
    benchmark::DoNotOptimize(FlowTrace::merge_sorted_runs(std::move(copy)));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * sim.trace.size()));
}
BENCHMARK(BM_FlowMergeSorted)->Arg(2)->Arg(8);

// --- trace ingest ----------------------------------------------------------
// The collector hand-off: one multi-tenant trace serialized once, decoded
// many ways. BM_ReadCsvParallel sweeps the decoder's thread count (the
// speedup at 4 threads vs 1 is the tracked number); BM_ReadLft* pin the
// binary format's stream and zero-copy paths against it.

const std::string& shared_csv_text() {
  static const std::string text = [] {
    std::ostringstream os;
    write_csv(os, shared_multi_job_cluster().trace);
    return std::move(os).str();
  }();
  return text;
}

const std::string& shared_lft_bytes() {
  static const std::string bytes = [] {
    std::ostringstream os(std::ios::binary);
    write_lft(os, shared_multi_job_cluster().trace);
    return std::move(os).str();
  }();
  return bytes;
}

void BM_ReadCsvParallel(benchmark::State& state) {
  const std::string& text = shared_csv_text();
  CsvParseOptions options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  options.min_chunk_bytes = 64 * 1024;  // fan out even on this ~MB input
  std::size_t flows = 0;
  for (auto _ : state) {
    const ParseResult result = read_csv_checked(text, options);
    flows = result.trace.size();
    benchmark::DoNotOptimize(&result.trace);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * flows));
  state.counters["flows"] = static_cast<double>(flows);
}
BENCHMARK(BM_ReadCsvParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ReadLftStream(benchmark::State& state) {
  const std::string& bytes = shared_lft_bytes();
  std::size_t flows = 0;
  for (auto _ : state) {
    std::istringstream is(bytes, std::ios::binary);
    const FlowTrace trace = read_lft(is);
    flows = trace.size();
    benchmark::DoNotOptimize(&trace);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * flows));
}
BENCHMARK(BM_ReadLftStream);

void BM_ReadLftMmap(benchmark::State& state) {
  // Zero-copy load: map + validate (the checksum walks every byte, so the
  // pages are hot and the columns usable) without materializing records.
  const std::string& bytes = shared_lft_bytes();
  const std::string path = [&bytes] {
    std::string p = "/tmp/llmprism_bench_ingest.lft";
    std::ofstream os(p, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return p;
  }();
  std::size_t flows = 0;
  for (auto _ : state) {
    const MappedFlowTrace mapped(path);
    flows = mapped.size();
    benchmark::DoNotOptimize(mapped.start_ns().data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * flows));
}
BENCHMARK(BM_ReadLftMmap);

// --- self-telemetry overhead ----------------------------------------------
// The pipeline is annotated unconditionally, so these pin the per-event
// cost: counter/histogram updates are relaxed atomics, and a disabled Span
// must be a single atomic load (the production default).

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Histogram histogram(obs::Histogram::default_seconds_buckets());
  double v = 1e-5;
  for (auto _ : state) {
    histogram.observe(v);
    v = v < 10.0 ? v * 1.001 : 1e-5;
    benchmark::DoNotOptimize(histogram);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::TraceCollector::instance().disable();
  for (auto _ : state) {
    const obs::Span span("bench.disabled");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::TraceCollector::instance().enable();
  for (auto _ : state) {
    const obs::Span span("bench.enabled");
    benchmark::DoNotOptimize(&span);
  }
  obs::TraceCollector::instance().disable();
  (void)obs::TraceCollector::instance().drain();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsSpanEnabled);

void BM_DisjointSetUnite(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n; ++i) {
    edges.emplace_back(
        static_cast<std::size_t>(rng.uniform_int(0, 9999)),
        static_cast<std::size_t>(rng.uniform_int(0, 9999)));
  }
  for (auto _ : state) {
    DisjointSet ds(10000);
    for (const auto& [a, b] : edges) ds.unite(a, b);
    benchmark::DoNotOptimize(ds.num_sets());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DisjointSetUnite)->Arg(100000);

}  // namespace
}  // namespace llmprism

BENCHMARK_MAIN();
