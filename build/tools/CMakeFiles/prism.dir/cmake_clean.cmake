file(REMOVE_RECURSE
  "CMakeFiles/prism.dir/prism_cli.cpp.o"
  "CMakeFiles/prism.dir/prism_cli.cpp.o.d"
  "prism"
  "prism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
