// End-to-end integration tests: simulate a multi-tenant cluster, run the
// full LLMPrism pipeline, score against ground truth.
#include "llmprism/core/prism.hpp"

#include <gtest/gtest.h>

#include "llmprism/baseline/eval.hpp"
#include "llmprism/core/render.hpp"
#include "llmprism/simulator/cluster_sim.hpp"

namespace llmprism {
namespace {

JobSimConfig job(std::uint32_t tp, std::uint32_t dp, std::uint32_t pp,
                 std::uint32_t steps = 10) {
  JobSimConfig cfg;
  cfg.parallelism.tp = tp;
  cfg.parallelism.dp = dp;
  cfg.parallelism.pp = pp;
  cfg.parallelism.micro_batches = 4;
  cfg.num_steps = steps;
  return cfg;
}

ClusterSimConfig two_job_cluster() {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 12, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  cfg.jobs.push_back({job(8, 2, 2), {}});   // 32 GPUs, 4 machines
  cfg.jobs.push_back({job(8, 4, 1), {}});   // 32 GPUs, 4 machines
  cfg.seed = 2024;
  return cfg;
}

class PrismIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<ClusterSimResult>(run_cluster_sim(two_job_cluster()));
    prism_ = std::make_unique<Prism>(sim_->topology);
    report_ = std::make_unique<PrismReport>(prism_->analyze(sim_->trace));
  }

  std::unique_ptr<ClusterSimResult> sim_;
  std::unique_ptr<Prism> prism_;
  std::unique_ptr<PrismReport> report_;
};

TEST_F(PrismIntegrationTest, RecognizesBothJobsExactly) {
  const auto score = score_job_recognition(report_->recognition,
                                           std::span(sim_->jobs));
  EXPECT_EQ(score.true_jobs, 2u);
  EXPECT_EQ(score.recognized_jobs, 2u);
  EXPECT_EQ(score.exact_matches, 2u);
  EXPECT_TRUE(score.perfect());
}

TEST_F(PrismIntegrationTest, CrossMachineClustersExceedJobs) {
  // Each job contributes tp-many connectivity components (TP is invisible),
  // so phase 1 must find more clusters than jobs.
  EXPECT_GT(report_->recognition.num_cross_machine_clusters, 2u);
}

TEST_F(PrismIntegrationTest, ClassifiesAllPairsCorrectly) {
  ASSERT_EQ(report_->jobs.size(), 2u);
  for (std::size_t j = 0; j < 2; ++j) {
    // Recognized job order matches sim job order here (both sorted by
    // first GPU id and machines allocated in order).
    const auto score = score_comm_type(
        std::span(report_->jobs[j].comm_types.pairs), sim_->jobs[j]);
    EXPECT_EQ(score.missing_pairs, 0u) << "job " << j;
    EXPECT_DOUBLE_EQ(score.accuracy(), 1.0) << "job " << j;
  }
}

TEST_F(PrismIntegrationTest, RecoversDpGroupCount) {
  // Job 0: tp=8, pp=2 -> 16 DP groups. Job 1: tp=8, pp=1 -> 8 DP groups.
  EXPECT_EQ(report_->jobs[0].comm_types.dp_components.size(), 16u);
  EXPECT_EQ(report_->jobs[1].comm_types.dp_components.size(), 8u);
}

TEST_F(PrismIntegrationTest, TimelineErrorWithinPaperBound) {
  for (std::size_t j = 0; j < 2; ++j) {
    const auto score = score_timelines(std::span(report_->jobs[j].timelines),
                                       sim_->jobs[j]);
    EXPECT_GT(score.ranks_scored, 0u);
    EXPECT_GT(score.matched_fraction(), 0.9) << "job " << j;
    // Paper reports < 0.3% reconstruction error.
    EXPECT_LT(score.mean_duration_error, 0.003) << "job " << j;
  }
}

TEST_F(PrismIntegrationTest, ReconstructsTheRightStepCount) {
  for (const JobAnalysis& job_analysis : report_->jobs) {
    ASSERT_FALSE(job_analysis.timelines.empty());
    // 10 simulated steps; windowing effects allow one step of slack.
    for (const GpuTimeline& t : job_analysis.timelines) {
      EXPECT_GE(t.steps.size(), 9u) << "gpu " << t.gpu;
      EXPECT_LE(t.steps.size(), 11u) << "gpu " << t.gpu;
    }
  }
}

TEST_F(PrismIntegrationTest, HealthyClusterRaisesNoAlerts) {
  for (const JobAnalysis& job_analysis : report_->jobs) {
    EXPECT_TRUE(job_analysis.step_alerts.empty());
    EXPECT_TRUE(job_analysis.group_alerts.empty());
  }
  EXPECT_TRUE(report_->switch_bandwidth_alerts.empty());
}

TEST_F(PrismIntegrationTest, ReportSummaryRenders) {
  const std::string summary = render_report_summary(*report_);
  EXPECT_NE(summary.find("recognized jobs: 2"), std::string::npos);
}

TEST_F(PrismIntegrationTest, TimelineChartRenders) {
  const auto& timelines = report_->jobs[0].timelines;
  ASSERT_GE(timelines.size(), 4u);
  const std::string chart = render_timeline_chart(
      std::span(timelines.data(), 4), {.width = 80});
  EXPECT_NE(chart.find("gpu "), std::string::npos);
  EXPECT_NE(chart.find('D'), std::string::npos);  // DP events visible
}

// ---------------------------------------------------------------------------
// Fault-injection integration: the diagnosis layer must catch what the
// simulator injects.

TEST(PrismDiagnosisIntegrationTest, DetectsStragglerViaCrossStep) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 4, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  auto j = job(8, 2, 2, 20);
  j.stragglers.push_back(
      {.rank = 5, .step_begin = 12, .step_end = 12, .slowdown = 2.0});
  cfg.jobs.push_back({j, {}});
  const auto sim = run_cluster_sim(cfg);
  const Prism prism(sim.topology);
  const auto report = prism.analyze(sim.trace);
  ASSERT_EQ(report.jobs.size(), 1u);
  ASSERT_FALSE(report.jobs[0].step_alerts.empty());
  bool found = false;
  for (const StepAlert& a : report.jobs[0].step_alerts) {
    if (a.step_index == 12) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PrismDiagnosisIntegrationTest, DetectsSlowDpGroupViaCrossGroup) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 4, .gpus_per_machine = 8,
                  .machines_per_leaf = 4, .num_spines = 2};
  auto j = job(8, 4, 1, 16);
  j.slow_dp_groups.push_back(
      {.tp_idx = 2, .pp_idx = 0, .step_begin = 8, .step_end = 10,
       .slowdown = 3.0});
  cfg.jobs.push_back({j, {}});
  const auto sim = run_cluster_sim(cfg);
  const Prism prism(sim.topology);
  const auto report = prism.analyze(sim.trace);
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_FALSE(report.jobs[0].group_alerts.empty());
}

TEST(PrismDiagnosisIntegrationTest, DetectsDegradedSwitch) {
  ClusterSimConfig cfg;
  cfg.topology = {.num_machines = 16, .gpus_per_machine = 8,
                  .machines_per_leaf = 2, .num_spines = 4};
  cfg.jobs.push_back({job(8, 8, 2, 10), {}});
  // Degrade one leaf switch for the whole run.
  cfg.switch_faults.push_back(
      {SwitchId(1), TimeWindow{0, 600 * kSecond}, 0.25});
  const auto sim = run_cluster_sim(cfg);
  const Prism prism(sim.topology);
  const auto report = prism.analyze(sim.trace);
  bool flagged = false;
  for (const SwitchBandwidthAlert& a : report.switch_bandwidth_alerts) {
    if (a.switch_id == SwitchId(1)) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

}  // namespace
}  // namespace llmprism
