#include "llmprism/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "llmprism/common/json.hpp"

namespace llmprism::obs {

namespace {

/// HELP text escaping per the Prometheus text exposition format: backslash
/// and line feed are the only escaped characters.
void write_help_text(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
}

/// Prometheus floats: plain decimal, no locale surprises; integral values
/// print without a fractional part.
void write_number(std::ostream& os, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os << v;
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram: bounds must be ascending");
  }
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_seconds_buckets() {
  return {1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0};
}

double histogram_quantile(const Histogram::Snapshot& snap, double q) {
  if (snap.count == 0 || snap.counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(snap.count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < snap.counts.size(); ++b) {
    const std::uint64_t before = cumulative;
    cumulative += snap.counts[b];
    if (static_cast<double>(cumulative) < rank) continue;
    if (b >= snap.bounds.size()) {
      // +Inf bucket: clamp to the highest finite bound (or the bucket's
      // observations themselves when there are no finite buckets at all).
      return snap.bounds.empty() ? snap.sum / static_cast<double>(snap.count)
                                 : snap.bounds.back();
    }
    const double lo = b == 0 ? 0.0 : snap.bounds[b - 1];
    const double hi = snap.bounds[b];
    const auto in_bucket = static_cast<double>(snap.counts[b]);
    if (in_bucket <= 0.0) return hi;
    const double frac = (rank - static_cast<double>(before)) / in_bucket;
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return snap.bounds.empty() ? 0.0 : snap.bounds.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry{Kind::kCounter, help, std::make_unique<Counter>(), nullptr,
                nullptr};
    it = entries_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kCounter) {
    throw std::invalid_argument("metrics: '" + name +
                                "' already registered as a different kind");
  }
  return *it->second.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry{Kind::kGauge, help, nullptr, std::make_unique<Gauge>(),
                nullptr};
    it = entries_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kGauge) {
    throw std::invalid_argument("metrics: '" + name +
                                "' already registered as a different kind");
  }
  return *it->second.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    if (bounds.empty()) bounds = Histogram::default_seconds_buckets();
    Entry entry{Kind::kHistogram, help, nullptr, nullptr,
                std::make_unique<Histogram>(std::move(bounds))};
    it = entries_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kHistogram) {
    throw std::invalid_argument("metrics: '" + name +
                                "' already registered as a different kind");
  }
  return *it->second.histogram;
}

void Registry::write_prometheus(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    if (!entry.help.empty()) {
      os << "# HELP " << name << ' ';
      write_help_text(os, entry.help);
      os << '\n';
    }
    switch (entry.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << ' ' << entry.counter->value() << '\n';
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n" << name << ' ';
        write_number(os, entry.gauge->value());
        os << '\n';
        break;
      case Kind::kHistogram: {
        const auto snap = entry.histogram->snapshot();
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
          cumulative += snap.counts[b];
          os << name << "_bucket{le=\"";
          write_number(os, snap.bounds[b]);
          os << "\"} " << cumulative << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << snap.count << '\n'
           << name << "_sum ";
        write_number(os, snap.sum);
        os << '\n' << name << "_count " << snap.count << '\n';
        break;
      }
    }
  }
}

void Registry::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kCounter) continue;
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':' << entry.counter->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kGauge) continue;
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':';
    write_number(os, entry.gauge->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kHistogram) continue;
    if (!first) os << ',';
    first = false;
    const auto snap = entry.histogram->snapshot();
    write_json_string(os, name);
    os << ":{\"bounds\":[";
    for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
      if (b != 0) os << ',';
      write_number(os, snap.bounds[b]);
    }
    os << "],\"counts\":[";
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      if (b != 0) os << ',';
      os << snap.counts[b];
    }
    os << "],\"sum\":";
    write_number(os, snap.sum);
    os << ",\"count\":" << snap.count;
    os << ",\"p50\":";
    write_number(os, histogram_quantile(snap, 0.50));
    os << ",\"p95\":";
    write_number(os, histogram_quantile(snap, 0.95));
    os << ",\"p99\":";
    write_number(os, histogram_quantile(snap, 0.99));
    os << '}';
  }
  os << "}}\n";
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->reset();
        break;
      case Kind::kGauge:
        entry.gauge->reset();
        break;
      case Kind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Registry& default_registry() {
  static Registry registry;
  return registry;
}

}  // namespace llmprism::obs
