// Unit tests for Bayesian Online Changepoint Detection, including the
// differential suite for the structure-of-arrays engine: observe_batch()
// must be bitwise identical to the observe() loop (they share one kernel),
// and the retuned defaults (max_components 8, prune_mass 1e-6) must leave
// every boundary decision on the fixture series identical to the
// conservative configuration (64, 1e-8) the detector originally shipped
// with.
#include "llmprism/bocd/bocd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "llmprism/common/rng.hpp"

namespace llmprism {
namespace {

TEST(BocdConfigTest, RejectsBadHazard) {
  BocdConfig cfg;
  cfg.hazard_lambda = 1.0;
  EXPECT_THROW(BocdDetector{cfg}, std::invalid_argument);
}

TEST(BocdConfigTest, RejectsBadThreshold) {
  BocdConfig cfg;
  cfg.changepoint_threshold = 1.0;
  EXPECT_THROW(BocdDetector{cfg}, std::invalid_argument);
  cfg.changepoint_threshold = 0.0;
  EXPECT_THROW(BocdDetector{cfg}, std::invalid_argument);
}

TEST(BocdConfigTest, RejectsNonPositivePrior) {
  BocdConfig cfg;
  cfg.prior_kappa = 0.0;
  EXPECT_THROW(BocdDetector{cfg}, std::invalid_argument);
}

TEST(BocdDetectorTest, FirstObservationIsNotAChangepoint) {
  BocdDetector detector;
  const double p = detector.observe(0.5);
  EXPECT_LT(p, 0.5);
  EXPECT_FALSE(detector.last_was_changepoint());
}

TEST(BocdDetectorTest, StationarySequenceHasNoChangepoints) {
  Rng rng(7);
  BocdDetector detector;
  for (int i = 0; i < 500; ++i) {
    detector.observe(rng.normal(10.0, 0.5));
    EXPECT_FALSE(detector.last_was_changepoint()) << "at observation " << i;
  }
}

TEST(BocdDetectorTest, RunLengthGrowsOnStationaryData) {
  // Data tighter than the prior: longer runs fit ever better, so the MAP
  // run length tracks the true (unbroken) run.
  Rng rng(3);
  BocdDetector detector;
  for (int i = 0; i < 100; ++i) detector.observe(rng.normal(5.0, 0.3));
  EXPECT_GT(detector.map_run_length(), 80u);
}

TEST(BocdDetectorTest, DetectsLargeMeanShift) {
  Rng rng(11);
  BocdDetector detector;
  for (int i = 0; i < 50; ++i) detector.observe(rng.normal(0.0, 0.2));
  // A 50-sigma jump must trip the detector immediately.
  detector.observe(10.0);
  EXPECT_TRUE(detector.last_was_changepoint());
}

TEST(BocdDetectorTest, ResetRestoresPriorState) {
  BocdDetector detector;
  for (int i = 0; i < 20; ++i) detector.observe(1.0 + 0.01 * i);
  detector.reset();
  EXPECT_EQ(detector.observations_seen(), 0u);
  EXPECT_EQ(detector.map_run_length(), 0u);
}

TEST(BocdDetectorTest, SurvivesExtremeValues) {
  BocdDetector detector;
  detector.observe(1e30);
  detector.observe(-1e30);
  detector.observe(0.0);
  // No NaNs/crashes; probability stays a probability.
  EXPECT_GE(detector.last_cp_probability(), 0.0);
  EXPECT_LE(detector.last_cp_probability(), 1.0);
}

TEST(BocdDetectorTest, IdenticalObservationsDoNotDivideByZero) {
  BocdDetector detector;
  for (int i = 0; i < 200; ++i) {
    const double p = detector.observe(5.0);
    EXPECT_TRUE(std::isfinite(p));
  }
  EXPECT_GT(detector.map_run_length(), 150u);
}

TEST(DetectChangepointsTest, FindsSingleShift) {
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 60; ++i) xs.push_back(rng.normal(0.0, 0.3));
  for (int i = 0; i < 60; ++i) xs.push_back(rng.normal(8.0, 0.3));
  const auto cps = detect_changepoints(xs);
  ASSERT_FALSE(cps.empty());
  // The first changepoint lands at (or just after) the true shift.
  EXPECT_GE(cps.front(), 59u);
  EXPECT_LE(cps.front(), 62u);
}

TEST(DetectChangepointsTest, EmptyInput) {
  EXPECT_TRUE(detect_changepoints({}).empty());
}

// ---------------------------------------------------------------------------
// Differential suite for the SoA engine.
//
// Fixture generators are self-contained (a pinned LCG, not common/rng.hpp)
// so the series bytes can never drift under an Rng refactor.

struct Lcg {
  std::uint64_t s;
  double next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(s >> 11) / 9007199254740992.0;
  }
  // Irwin–Hall(4) centered: cheap, smooth, roughly Gaussian on [-2, 2].
  double gauss_ish() { return next() + next() + next() + next() - 2.0; }
};

// 30 training steps of 24 flows, 1–3 ms intra-step intervals, 700–900 ms
// step gaps — the per-pair DP traffic shape segment_by_gaps exists for.
std::vector<TimeNs> step_timestamps() {
  Lcg rng{20260808ULL};
  std::vector<TimeNs> ts;
  TimeNs t = 5 * kMillisecond;
  for (int step = 0; step < 30; ++step) {
    for (int f = 0; f < 24; ++f) {
      ts.push_back(t);
      t += static_cast<TimeNs>((1.0 + 2.0 * rng.next()) * kMillisecond);
    }
    t += static_cast<TimeNs>((700.0 + 200.0 * rng.next()) * kMillisecond);
  }
  return ts;
}

// Level shifts of 3 sigma-units every 50 observations (cycling through
// three levels): a dense-changepoint series that keeps many run-length
// hypotheses alive, exercising the prune/compact path hard.
std::vector<double> shifting_series() {
  Lcg rng{7ULL};
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) {
    const double level = 2.0 + 3.0 * static_cast<double>((i / 50) % 3);
    xs.push_back(level + 0.25 * rng.gauss_ish());
  }
  return xs;
}

// Two 1e150 spikes: every hypothesis gets (numerically) zero likelihood,
// forcing the hard-reset-from-prior path twice.
std::vector<double> hard_reset_series() {
  Lcg rng{1234ULL};
  std::vector<double> xs;
  for (int i = 0; i < 160; ++i) {
    if (i == 60 || i == 120) {
      xs.push_back(1e150);
    } else {
      xs.push_back(1.0 + 0.1 * rng.gauss_ish());
    }
  }
  return xs;
}

// One stationary run long enough that the hypothesis count rides the
// max_components cap the whole time (truncation every observation).
std::vector<double> stationary_series() {
  Lcg rng{99ULL};
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(5.0 + 0.3 * rng.gauss_ish());
  return xs;
}

// Drives `xs` through one detector per path — observe() loop vs
// observe_batch() with readouts — and asserts the per-observation posterior
// readouts and the final detector state are BITWISE identical (EXPECT_EQ on
// double is exact equality). The two paths share one step() kernel, so any
// divergence is a kernel regression, not rounding.
void expect_batch_matches_loop(const std::vector<double>& xs,
                               const BocdConfig& config) {
  BocdDetector loop_detector(config);
  std::vector<BocdReadout> loop_readouts;
  loop_readouts.reserve(xs.size());
  for (const double x : xs) {
    loop_detector.observe(x);
    loop_readouts.push_back({loop_detector.last_cp_probability(),
                             loop_detector.last_recent_probability(),
                             static_cast<std::uint32_t>(
                                 loop_detector.map_run_length())});
  }

  BocdDetector batch_detector(config);
  std::vector<BocdReadout> batch_readouts(xs.size());
  batch_detector.observe_batch(xs, batch_readouts);

  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(batch_readouts[i].cp_probability,
              loop_readouts[i].cp_probability)
        << "cp_probability diverged at observation " << i;
    ASSERT_EQ(batch_readouts[i].recent_probability,
              loop_readouts[i].recent_probability)
        << "recent_probability diverged at observation " << i;
    ASSERT_EQ(batch_readouts[i].map_run_length,
              loop_readouts[i].map_run_length)
        << "map_run_length diverged at observation " << i;
  }
  EXPECT_EQ(batch_detector.observations_seen(),
            loop_detector.observations_seen());
  EXPECT_EQ(batch_detector.hard_resets(), loop_detector.hard_resets());
  EXPECT_EQ(batch_detector.last_cp_probability(),
            loop_detector.last_cp_probability());
  EXPECT_EQ(batch_detector.map_run_length(), loop_detector.map_run_length());
}

TEST(BocdBatchDifferentialTest, ShiftingSeriesDefaults) {
  expect_batch_matches_loop(shifting_series(), BocdConfig{});
}

TEST(BocdBatchDifferentialTest, StationarySeriesDefaults) {
  expect_batch_matches_loop(stationary_series(), BocdConfig{});
}

TEST(BocdBatchDifferentialTest, HardResetSeries) {
  // The degenerate-restart path must round-trip too: batch and loop reset
  // from the prior at the same observations.
  expect_batch_matches_loop(hard_reset_series(), BocdConfig{});
  BocdDetector d;
  for (const double x : hard_reset_series()) d.observe(x);
  EXPECT_EQ(d.hard_resets(), 2u);
}

TEST(BocdBatchDifferentialTest, PruneBoundaryConfigs) {
  // Configurations that sit ON the prune/compact boundaries: an aggressive
  // mass floor (hypotheses die constantly), a cap of 1 (only the reset
  // hypothesis survives), and the old conservative shape.
  for (const auto& [cap, prune] :
       {std::pair<std::size_t, double>{8, 1e-3},
        std::pair<std::size_t, double>{1, 1e-6},
        std::pair<std::size_t, double>{2, 1e-2},
        std::pair<std::size_t, double>{64, 1e-8}}) {
    BocdConfig cfg;
    cfg.max_components = cap;
    cfg.prune_mass = prune;
    expect_batch_matches_loop(shifting_series(), cfg);
    expect_batch_matches_loop(hard_reset_series(), cfg);
  }
}

TEST(BocdBatchDifferentialTest, PooledDetectorMatchesFresh) {
  // The pooled-reuse path (reconfigure + cached coefficient tables) must
  // give the same answers as a freshly constructed detector. Run two
  // different series back-to-back through the pool so the second call
  // actually reuses warmed state.
  BocdConfig cfg;
  const auto first = shifting_series();
  const auto second = stationary_series();

  BocdDetector& pooled1 = pooled_detector(cfg);
  std::vector<BocdReadout> pooled_first(first.size());
  pooled1.observe_batch(first, pooled_first);
  BocdDetector& pooled2 = pooled_detector(cfg);
  std::vector<BocdReadout> pooled_second(second.size());
  pooled2.observe_batch(second, pooled_second);

  BocdDetector fresh1(cfg);
  std::vector<BocdReadout> fresh_first(first.size());
  fresh1.observe_batch(first, fresh_first);
  BocdDetector fresh2(cfg);
  std::vector<BocdReadout> fresh_second(second.size());
  fresh2.observe_batch(second, fresh_second);

  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(pooled_first[i].cp_probability, fresh_first[i].cp_probability)
        << "first series diverged at " << i;
  }
  for (std::size_t i = 0; i < second.size(); ++i) {
    ASSERT_EQ(pooled_second[i].cp_probability, fresh_second[i].cp_probability)
        << "reused detector diverged at " << i;
    ASSERT_EQ(pooled_second[i].map_run_length, fresh_second[i].map_run_length)
        << "reused detector MAP diverged at " << i;
  }
}

// ---------------------------------------------------------------------------
// Index-level fixtures. These pin the detector's DECISIONS (boundary and
// changepoint indices) on the fixture series, captured from the engine
// under the old conservative configuration — and assert the retuned
// defaults reproduce them exactly. This is the contract that let the
// defaults change: the cap and mass floor only drop hypotheses whose
// posterior mass is orders of magnitude below every boundary decision.

const std::vector<std::size_t> kStepBoundaries = {
    0,   24,  48,  72,  96,  120, 144, 168, 192, 216,
    240, 264, 288, 312, 336, 360, 384, 408, 432, 456,
    480, 504, 528, 552, 576, 600, 624, 648, 672, 696};
const std::vector<std::size_t> kShiftChangepoints = {
    50, 51, 100, 101, 150, 151, 152, 200, 201, 251};
const std::vector<std::size_t> kHardResetChangepoints = {60,  61,  62,
                                                         120, 121, 122};

// The two configurations every fixture must agree under.
std::vector<BocdConfig> fixture_configs() {
  BocdConfig old_explicit;  // what the detector originally shipped with
  old_explicit.max_components = 64;
  old_explicit.prune_mass = 1e-8;
  return {BocdConfig{}, old_explicit};
}

TEST(BocdFixtureTest, StepBoundariesStableAcrossConfigs) {
  const auto ts = step_timestamps();
  for (const BocdConfig& cfg : fixture_configs()) {
    SegmenterConfig scfg;
    scfg.bocd = cfg;
    EXPECT_EQ(segment_by_gaps(ts, scfg), kStepBoundaries)
        << "cap=" << cfg.max_components << " prune=" << cfg.prune_mass;
  }
}

TEST(BocdFixtureTest, ShiftChangepointsStableAcrossConfigs) {
  const auto xs = shifting_series();
  for (const BocdConfig& cfg : fixture_configs()) {
    EXPECT_EQ(detect_changepoints(xs, cfg), kShiftChangepoints)
        << "cap=" << cfg.max_components << " prune=" << cfg.prune_mass;
  }
}

TEST(BocdFixtureTest, HardResetChangepointsStableAcrossConfigs) {
  const auto xs = hard_reset_series();
  for (const BocdConfig& cfg : fixture_configs()) {
    BocdDetector d(cfg);
    std::vector<std::size_t> cps;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      d.observe(xs[i]);
      if (d.last_was_changepoint()) cps.push_back(i);
    }
    EXPECT_EQ(cps, kHardResetChangepoints)
        << "cap=" << cfg.max_components << " prune=" << cfg.prune_mass;
    EXPECT_EQ(d.hard_resets(), 2u);
  }
}

TEST(BocdFixtureTest, AggressivePruningKeepsShiftDecisions) {
  // Even a far harsher floor than the default (1e-3 at cap 8) leaves the
  // shift decisions untouched — the margin behind the retuned defaults.
  BocdConfig cfg;
  cfg.max_components = 8;
  cfg.prune_mass = 1e-3;
  EXPECT_EQ(detect_changepoints(shifting_series(), cfg), kShiftChangepoints);
}

// ---------------------------------------------------------------------------
// segment_by_gaps: the step-division workhorse.

std::vector<TimeNs> burst_train(int bursts, int flows_per_burst,
                                DurationNs intra_gap, DurationNs inter_gap,
                                Rng& rng) {
  std::vector<TimeNs> ts;
  TimeNs t = 0;
  for (int b = 0; b < bursts; ++b) {
    for (int f = 0; f < flows_per_burst; ++f) {
      ts.push_back(t);
      t += intra_gap + static_cast<TimeNs>(
                           rng.uniform(0.0, 0.2 * static_cast<double>(intra_gap)));
    }
    t += inter_gap;
  }
  return ts;
}

TEST(SegmentByGapsTest, SplitsBurstsExactly) {
  Rng rng(5);
  // 10 bursts of 20 flows, 1 ms apart within a burst, 2 s between bursts —
  // the shape of per-pair DP traffic.
  const auto ts = burst_train(10, 20, kMillisecond, 2 * kSecond, rng);
  const auto starts = segment_by_gaps(ts);
  ASSERT_EQ(starts.size(), 10u);
  for (std::size_t b = 0; b < starts.size(); ++b) {
    EXPECT_EQ(starts[b], b * 20) << "burst " << b;
  }
}

TEST(SegmentByGapsTest, SingleBurstYieldsOneSegment) {
  Rng rng(6);
  const auto ts = burst_train(1, 50, kMillisecond, 0, rng);
  const auto starts = segment_by_gaps(ts);
  EXPECT_EQ(starts.size(), 1u);
}

TEST(SegmentByGapsTest, EmptyAndSingleton) {
  EXPECT_TRUE(segment_by_gaps({}).empty());
  const std::vector<TimeNs> one{42};
  const auto starts = segment_by_gaps(one);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], 0u);
}

TEST(SegmentByGapsTest, ThrowsOnUnsortedInput) {
  const std::vector<TimeNs> ts{10, 5, 20};
  EXPECT_THROW(segment_by_gaps(ts), std::invalid_argument);
}

TEST(SegmentByGapsTest, RobustToIntervalJitter) {
  Rng rng(9);
  std::vector<TimeNs> ts;
  TimeNs t = 0;
  for (int b = 0; b < 8; ++b) {
    for (int f = 0; f < 30; ++f) {
      ts.push_back(t);
      // within-burst intervals vary 0.5–3 ms
      t += static_cast<TimeNs>(rng.uniform(0.5e6, 3e6));
    }
    t += 3 * kSecond;
  }
  const auto starts = segment_by_gaps(ts);
  EXPECT_EQ(starts.size(), 8u);
}

TEST(SegmentByGapsTest, MinimalWarmupGap) {
  // The smallest warm-up BOCD can honestly split on: enough pre-gap
  // intervals to learn that traffic is tight (a gap after a single
  // observation is statistically indistinguishable from a broad run).
  std::vector<TimeNs> ts;
  for (int i = 0; i < 8; ++i) ts.push_back(i * 2 * kMillisecond);
  const TimeNs gap_start = ts.back() + 5 * kSecond;
  for (int i = 0; i < 4; ++i) ts.push_back(gap_start + i * 2 * kMillisecond);
  const auto starts = segment_by_gaps(ts);
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[1], 8u);
}

// Property sweep: segmentation recovers the burst count across a range of
// burst shapes.
struct GapSweepParam {
  int bursts;
  int flows_per_burst;
  DurationNs intra_gap;
  DurationNs inter_gap;
};

class SegmentByGapsSweep : public ::testing::TestWithParam<GapSweepParam> {};

TEST_P(SegmentByGapsSweep, RecoversBurstCount) {
  const auto p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.bursts * 1000 + p.flows_per_burst));
  const auto ts =
      burst_train(p.bursts, p.flows_per_burst, p.intra_gap, p.inter_gap, rng);
  const auto starts = segment_by_gaps(ts);
  EXPECT_EQ(starts.size(), static_cast<std::size_t>(p.bursts));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SegmentByGapsSweep,
    ::testing::Values(
        GapSweepParam{5, 10, kMillisecond, kSecond},
        GapSweepParam{20, 8, kMillisecond, 500 * kMillisecond},
        GapSweepParam{3, 100, 100 * kMicrosecond, 2 * kSecond},
        GapSweepParam{50, 16, 2 * kMillisecond, 800 * kMillisecond},
        GapSweepParam{10, 8, 10 * kMillisecond, 4 * kSecond},
        GapSweepParam{7, 64, 500 * kMicrosecond, kSecond}));

}  // namespace
}  // namespace llmprism
