file(REMOVE_RECURSE
  "CMakeFiles/gen_trace.dir/gen_trace.cpp.o"
  "CMakeFiles/gen_trace.dir/gen_trace.cpp.o.d"
  "gen_trace"
  "gen_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
