// Packet-level model of the mirrored traffic and its records.
//
// Production ERSPAN deployments mirror raw packets to a collector, which
// reassembles them into the flow records LLMPrism consumes. This substrate
// models that step explicitly: flows are packetized onto the wire and a
// configurable collector (timeouts, sampling) turns packets back into flow
// records — including the aggregation/splitting artifacts that real
// collectors introduce and that the analysis layer must tolerate.
#pragma once

#include <cstdint>

#include "llmprism/common/ids.hpp"
#include "llmprism/common/time.hpp"

namespace llmprism {

/// One mirrored packet (only the header fields a collector keeps). When a
/// long flow is sampled (see PacketizeConfig::max_packets_per_flow) one
/// record stands for a run of wire packets, so bytes is 64-bit.
struct PacketRecord {
  TimeNs timestamp = 0;    ///< when the packet passed the mirror point
  GpuId src;
  GpuId dst;
  std::uint64_t bytes = 0; ///< wire bytes this record accounts for
  SwitchId observed_at;    ///< the switch whose port was mirrored

  friend constexpr bool operator==(const PacketRecord&,
                                   const PacketRecord&) = default;
};

/// Strict weak order by timestamp (ties by endpoints for determinism).
struct PacketTimestampLess {
  constexpr bool operator()(const PacketRecord& a,
                            const PacketRecord& b) const {
    if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  }
};

}  // namespace llmprism
