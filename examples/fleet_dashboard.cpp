// Fleet observability walkthrough: drive all three job-facing exports
// end-to-end on a multi-tenant simulated cluster — the pipeline a prismd
// daemon would run continuously.
//
//   flows -> OnlineMonitor -> { Perfetto trace, OpenMetrics series,
//                               incident journal }
//
// Run:  ./examples/fleet_dashboard [out_dir]
//
// Then open out_dir/fleet.perfetto.json in https://ui.perfetto.dev — each
// job is one process with per-rank tracks reconstructed purely from
// switch-mirrored flows; the straggler windows carry "step alert"
// instants. fleet.series.om is Prometheus-scrapable OpenMetrics text;
// fleet.journal.jsonl holds the open -> update -> resolve lifecycle of the
// injected fault.
#include <iostream>
#include <string>

#include "llmprism/llmprism.hpp"

using namespace llmprism;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // Three tenants on one fabric; the pipeline-parallel job develops a
  // straggler for a few mid-run steps.
  ClusterSimConfig sim_config;
  sim_config.topology = {.num_machines = 24,
                         .gpus_per_machine = 8,
                         .machines_per_leaf = 4,
                         .num_spines = 2};
  sim_config.seed = 47;

  JobSimConfig small;
  small.parallelism = {.tp = 8, .dp = 2, .pp = 2, .micro_batches = 4};
  small.num_steps = 30;

  JobSimConfig wide;
  wide.parallelism = {.tp = 8, .dp = 8, .pp = 1, .micro_batches = 4};
  wide.num_steps = 30;

  JobSimConfig piped;
  piped.parallelism = {.tp = 8, .dp = 2, .pp = 4, .micro_batches = 4};
  piped.num_steps = 30;
  // A short burst inside one analysis window alerts cleanly; the
  // attributed origin is one of the faulted rank's TP siblings (TP
  // traffic never leaves the machine, so the stage is the finest
  // flow-visible unit — DESIGN.md §11).
  piped.stragglers.push_back(
      {.rank = 8, .step_begin = 12, .step_end = 14, .slowdown = 2.5});

  sim_config.jobs.push_back({small, {}});
  sim_config.jobs.push_back({wide, {}});
  sim_config.jobs.push_back({piped, {}});
  const ClusterSimResult sim = run_cluster_sim(sim_config);
  std::cout << "cluster feed: " << sim.trace.size() << " flows, "
            << sim.jobs.size() << " tenants, "
            << to_seconds(sim.trace.span().length()) << " s\n";

  // The monitored side: fixed windows, warm cross-window state.
  MonitorConfig config;
  config.window = 4 * kSecond;
  OnlineMonitor monitor(sim.topology, config);

  // One ExportConfig drives every sink — the same struct `prism monitor
  // --perfetto-out ...` and a prismd daemon consume.
  ExportConfig exports;
  exports.perfetto_out = out_dir + "/fleet.perfetto.json";
  exports.series_out = out_dir + "/fleet.series.om";
  exports.journal_out = out_dir + "/fleet.journal.jsonl";
  if (const auto errors = exports.validate(); !errors.empty()) {
    for (const std::string& e : errors) std::cerr << "bad config: " << e << '\n';
    return 1;
  }
  ExportSinks sinks(exports);

  const TimeWindow span = sim.trace.span();
  for (TimeNs at = span.begin; at < span.end; at += kSecond) {
    for (const MonitorTick& tick :
         monitor.ingest(sim.trace.window({at, at + kSecond}))) {
      sinks.add_window(export_view(tick));
    }
  }
  if (const auto last = monitor.flush()) sinks.add_window(export_view(*last));

  const IncidentJournal* journal = sinks.journal();
  for (const std::string& error : sinks.write_files()) {
    std::cerr << "export failed: " << error << '\n';
    return 1;
  }
  for (const std::string& path :
       {exports.perfetto_out, exports.series_out, exports.journal_out}) {
    std::cout << "wrote " << path << '\n';
  }

  std::cout << '\n'
            << monitor.stats().windows_completed << " analyzed windows, "
            << (journal ? journal->num_events() : 0) << " journal events\n";
  std::cout << "open fleet.perfetto.json in https://ui.perfetto.dev to see "
               "the reconstructed Gantt chart\n";
  return 0;
}
