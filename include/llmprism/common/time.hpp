// Time representation: signed 64-bit nanoseconds since the trace epoch.
//
// Flow records and simulator events use a single linear clock; nanosecond
// resolution covers ±292 years, far beyond any trace window.
#pragma once

#include <cstdint>

namespace llmprism {

/// A point in time, in nanoseconds since the trace epoch.
using TimeNs = std::int64_t;
/// A span of time, in nanoseconds.
using DurationNs = std::int64_t;

inline constexpr DurationNs kMicrosecond = 1'000;
inline constexpr DurationNs kMillisecond = 1'000'000;
inline constexpr DurationNs kSecond = 1'000'000'000;
inline constexpr DurationNs kMinute = 60 * kSecond;
inline constexpr DurationNs kHour = 60 * kMinute;

[[nodiscard]] constexpr double to_seconds(DurationNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kSecond);
}

[[nodiscard]] constexpr double to_milliseconds(DurationNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kMillisecond);
}

[[nodiscard]] constexpr DurationNs from_seconds(double s) {
  return static_cast<DurationNs>(s * static_cast<double>(kSecond));
}

[[nodiscard]] constexpr DurationNs from_milliseconds(double ms) {
  return static_cast<DurationNs>(ms * static_cast<double>(kMillisecond));
}

/// A half-open time window [begin, end).
struct TimeWindow {
  TimeNs begin = 0;
  TimeNs end = 0;

  [[nodiscard]] constexpr DurationNs length() const { return end - begin; }
  [[nodiscard]] constexpr bool contains(TimeNs t) const {
    return t >= begin && t < end;
  }
  [[nodiscard]] constexpr bool empty() const { return end <= begin; }
};

}  // namespace llmprism
