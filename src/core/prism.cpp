#include "llmprism/core/prism.hpp"

#include <cassert>
#include <utility>
#include <vector>

#include "llmprism/common/log.hpp"
#include "llmprism/core/flow_router.hpp"
#include "llmprism/common/thread_pool.hpp"
#include "llmprism/obs/metrics.hpp"
#include "llmprism/obs/trace_span.hpp"

namespace llmprism {

namespace {

/// Registry instruments for the whole-pipeline view; looked up once.
struct PrismMetrics {
  obs::Counter& analyses;
  obs::Counter& jobs;
  obs::Counter& flows_routed;
  obs::Counter& flows_routed_via_dst;
  obs::Counter& flows_unattributed;
  obs::Histogram& analyze_seconds;
};

PrismMetrics& prism_metrics() {
  static PrismMetrics metrics{
      obs::default_registry().counter("llmprism_analyses_total",
                                      "Prism::analyze calls completed"),
      obs::default_registry().counter("llmprism_jobs_recognized_total",
                                      "Training jobs recognized (Alg. 1)"),
      obs::default_registry().counter(
          "llmprism_flows_routed_total",
          "Flows attributed to a recognized job"),
      obs::default_registry().counter(
          "llmprism_flows_routed_via_dst_total",
          "Routed flows whose unattributed src was recovered via dst"),
      obs::default_registry().counter(
          "llmprism_flows_unattributed_total",
          "Flows no recognized job claims"),
      obs::default_registry().histogram(
          "llmprism_analyze_seconds",
          "Wall-clock duration of Prism::analyze"),
  };
  return metrics;
}

/// Fold one job's stage counters into the report-level telemetry block.
/// Called in job-id order, so the totals are scheduling-independent.
void fold_job_telemetry(ReportTelemetry& t, const JobAnalysis& analysis,
                        const SegmenterStats& timeline_segmenter,
                        const KSigmaStats& job_ksigma) {
  const CommTypeCounters& ct = analysis.comm_types.counters;
  t.pairs_classified += analysis.comm_types.pairs.size();
  for (const PairClassification& p : analysis.comm_types.pairs) {
    if (p.type == CommType::kDP) {
      ++t.pairs_dp;
    } else {
      ++t.pairs_pp;
    }
  }
  t.refinement_flips += ct.refinement_flips;
  t.artifact_size_clusters += ct.artifact_size_clusters;
  t.artifact_flows += ct.artifact_flows;
  t.artifact_segments += ct.artifact_segments;

  t.bocd_observations += ct.segmenter.observations;
  t.bocd_boundaries += ct.segmenter.boundaries;
  t.bocd_hard_resets += ct.segmenter.hard_resets;
  t.bocd_observations += timeline_segmenter.observations;
  t.bocd_boundaries += timeline_segmenter.boundaries;
  t.bocd_hard_resets += timeline_segmenter.hard_resets;

  t.timelines_reconstructed += analysis.timelines.size();
  for (const GpuTimeline& tl : analysis.timelines) {
    t.timeline_events += tl.events.size();
    t.steps_reconstructed += tl.steps.size();
  }

  t.ksigma_series += job_ksigma.series;
  t.ksigma_points += job_ksigma.points;
  t.ksigma_alerts += job_ksigma.alerts;
}

}  // namespace

ReportTelemetry& ReportTelemetry::operator+=(const ReportTelemetry& other) {
  flows_total += other.flows_total;
  flows_routed += other.flows_routed;
  flows_routed_via_dst += other.flows_routed_via_dst;
  flows_unattributed += other.flows_unattributed;
  pairs_classified += other.pairs_classified;
  pairs_dp += other.pairs_dp;
  pairs_pp += other.pairs_pp;
  refinement_flips += other.refinement_flips;
  artifact_size_clusters += other.artifact_size_clusters;
  artifact_flows += other.artifact_flows;
  artifact_segments += other.artifact_segments;
  bocd_observations += other.bocd_observations;
  bocd_boundaries += other.bocd_boundaries;
  bocd_hard_resets += other.bocd_hard_resets;
  timelines_reconstructed += other.timelines_reconstructed;
  timeline_events += other.timeline_events;
  steps_reconstructed += other.steps_reconstructed;
  ksigma_series += other.ksigma_series;
  ksigma_points += other.ksigma_points;
  ksigma_alerts += other.ksigma_alerts;
  return *this;
}

Prism::Prism(const ClusterTopology& topology, PrismConfig config)
    : topology_(topology), config_(std::move(config)) {
  const std::size_t threads = ThreadPool::resolve(config_.num_threads);
  // The calling thread participates in every loop, so `threads - 1` workers
  // yield exactly `threads` concurrent lanes; with one thread no pool is
  // created and analyze() runs the plain in-order loop.
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads - 1);
}

std::size_t Prism::num_threads() const {
  return pool_ ? pool_->concurrency() : 1;
}

PrismReport Prism::analyze(const FlowTrace& trace) const {
  // Sort-once boundary: everything downstream (routing, per-pair CSR
  // positions, windowing, DP-run merging) relies on time order, so an
  // unsorted input is sorted exactly once here — never again per job.
  if (!trace.is_sorted()) {
    FlowTrace sorted = trace;
    sorted.sort();
    return analyze_sorted(sorted);
  }
  return analyze_sorted(trace);
}

PrismReport Prism::analyze_sorted(const FlowTrace& trace) const {
  PrismReport report;
  PrismMetrics& metrics = prism_metrics();
  const obs::ScopedTimer analyze_timer(metrics.analyze_seconds);
  const obs::Span analyze_span("prism.analyze");

  // (1) job recognition
  const JobRecognizer recognizer(topology_, config_.recognition);
  {
    const obs::Span span("prism.recognize");
    report.recognition = recognizer.recognize(trace);
  }
  log::info("prism: recognized ", report.recognition.jobs.size(),
            " jobs from ", report.recognition.num_cross_machine_clusters,
            " cross-machine clusters");

  // Route each flow to its job in one ordered pass over the trace: a
  // dense interned GPU->job table (one load per flow, no hash probes),
  // src lookup with dst fallback.
  const std::size_t num_jobs = report.recognition.jobs.size();
  std::vector<FlowTrace> job_traces;
  {
    const obs::Span span("prism.route");
    const FlowRouter router(report.recognition.jobs);
    FlowRouter::Result routed = router.route(trace);
    job_traces = std::move(routed.job_traces);
    report.telemetry.flows_routed = routed.flows_routed;
    report.telemetry.flows_routed_via_dst = routed.flows_routed_via_dst;
    report.telemetry.flows_unattributed = routed.flows_unattributed;
  }
  report.telemetry.flows_total = trace.size();

  const CommTypeIdentifier identifier(config_.comm_type);
  const TimelineReconstructor reconstructor(config_.timeline);
  const Diagnoser diagnoser(config_.diagnosis);

  // (2)-(4a) per-job stage, one task per recognized job. Each task owns its
  // slot in `analyses` / `job_dp_flows` / the two stats vectors and touches
  // nothing else, so the result cannot depend on scheduling; DP flows and
  // telemetry are merged in job-id order below, which keeps the
  // cluster-wide stage's input byte-identical to the sequential path.
  std::vector<JobAnalysis> analyses(num_jobs);
  std::vector<FlowTrace> job_dp_flows(num_jobs);
  std::vector<SegmenterStats> timeline_stats(num_jobs);
  std::vector<KSigmaStats> ksigma_stats(num_jobs);
  parallel_for(pool_.get(), num_jobs, [&](std::size_t j) {
    const obs::Span job_span("prism.job", j);
    JobAnalysis& analysis = analyses[j];
    analysis.id = JobId(static_cast<std::uint32_t>(j));
    analysis.job = report.recognition.jobs[j];
    analysis.trace = std::move(job_traces[j]);
    // Routing preserved the sorted input's order, so this is O(1) on the
    // cached flag — no per-job re-sort.
    assert(analysis.trace.is_sorted() &&
           "routing must preserve the sorted input's order");

    // (2) parallelism strategies, over the job's CSR pair index; the
    // per-flow types come back as a dense vector (one CommType per trace
    // position) shared with DP collection and timeline reconstruction.
    const PairIndex pair_index(analysis.trace);
    std::vector<CommType> flow_types;
    {
      const obs::Span span("job.comm_type", j);
      analysis.comm_types =
          identifier.identify(analysis.trace, pair_index, &flow_types);
    }

    // Collect this job's DP flows for cluster-wide switch diagnosis; the
    // trace is sorted, so this run is born sorted too.
    for (std::size_t i = 0; i < analysis.trace.size(); ++i) {
      if (flow_types[i] == CommType::kDP) {
        job_dp_flows[j].add(analysis.trace[i]);
      }
    }

    // (3) timelines + (4) job-level diagnosis
    if (config_.reconstruct_timelines) {
      {
        const obs::Span span("job.timeline", j);
        analysis.timelines = reconstructor.reconstruct_all(
            analysis.trace, flow_types, &timeline_stats[j]);
      }
      const obs::Span span("job.diagnosis", j);
      analysis.step_alerts =
          diagnoser.cross_step(std::span<const GpuTimeline>(analysis.timelines),
                               &ksigma_stats[j]);
      const auto durations = group_dp_durations(
          analysis.timelines, analysis.comm_types.dp_components);
      analysis.group_alerts = diagnoser.cross_group(durations,
                                                    &ksigma_stats[j]);
    }

    // (2b) full 3D layout from the recovered structure
    const obs::Span infer_span("job.infer", j);
    analysis.inferred = infer_parallelism(analysis.job.gpus.size(),
                                          analysis.comm_types,
                                          std::span(analysis.timelines));
  });
  report.jobs = std::move(analyses);

  // Deterministic merge: a k-way merge of the per-job sorted DP runs,
  // ties resolved to the lower job id — O(N log J) and zero re-sorting,
  // independent of task completion order.
  FlowTrace all_dp_flows = FlowTrace::merge_sorted_runs(std::move(job_dp_flows));
  for (std::size_t j = 0; j < num_jobs; ++j) {
    fold_job_telemetry(report.telemetry, report.jobs[j], timeline_stats[j],
                       ksigma_stats[j]);
  }

  // (4) cluster-wide switch-level diagnosis
  KSigmaStats switch_stats;
  {
    const obs::Span span("prism.switch_diagnosis");
    report.switch_bandwidth_gbps =
        Diagnoser::per_switch_bandwidth(all_dp_flows);
    report.switch_bandwidth_alerts =
        diagnoser.switch_bandwidth(all_dp_flows, &switch_stats);
    report.switch_concurrency_alerts =
        diagnoser.switch_concurrency(all_dp_flows);
  }
  report.telemetry.ksigma_series += switch_stats.series;
  report.telemetry.ksigma_points += switch_stats.points;
  report.telemetry.ksigma_alerts += switch_stats.alerts;

  metrics.analyses.inc();
  metrics.jobs.inc(num_jobs);
  metrics.flows_routed.inc(report.telemetry.flows_routed);
  metrics.flows_routed_via_dst.inc(report.telemetry.flows_routed_via_dst);
  metrics.flows_unattributed.inc(report.telemetry.flows_unattributed);
  return report;
}

}  // namespace llmprism
