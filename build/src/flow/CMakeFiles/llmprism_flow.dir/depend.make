# Empty dependencies file for llmprism_flow.
# This may be replaced when dependencies are built.
