#include "llmprism/flow/io.hpp"

#include <array>
#include <charconv>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "llmprism/common/csv.hpp"
#include "llmprism/common/thread_pool.hpp"
#include "llmprism/obs/metrics.hpp"
#include "llmprism/obs/trace_span.hpp"

namespace llmprism {

namespace {

constexpr std::string_view kHeader = "start_ns,src,dst,bytes,duration_ns,switches";

// Ingest self-telemetry (names shared with the LFT readers in lft.cpp; the
// registry deduplicates, so both files cache the same objects).
obs::Counter& ingest_bytes_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_ingest_bytes_total", "Bytes consumed by trace ingest (CSV + LFT)");
  return c;
}

obs::Counter& ingest_rows_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_ingest_rows_total", "Flow rows successfully ingested");
  return c;
}

obs::Counter& ingest_bad_rows_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_ingest_bad_rows_total", "CSV rows rejected with a diagnostic");
  return c;
}

obs::Counter& ingest_chunks_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_ingest_chunks_total",
      "Chunks dispatched by the parallel CSV decoder");
  return c;
}

obs::Histogram& ingest_parse_seconds() {
  static obs::Histogram& h = obs::default_registry().histogram(
      "llmprism_ingest_parse_seconds",
      "Wall time of one trace parse/load (CSV or LFT)");
  return h;
}

std::string join_switches(const SwitchPath& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out += ';';
    out += std::to_string(path[i].value());
  }
  return out;
}

// --- allocation-free row decoding ------------------------------------------
// The hot path never materializes a std::string per field: fields are
// string_views into the input buffer and numbers go through from_chars.
// Diagnostics (the cold path) still build owned messages.

template <typename T>
bool parse_number_into(std::string_view s, std::string_view what, T& value,
                       std::string& error) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    error = "flow csv: bad " + std::string(what) + " field '" + std::string(s) +
            "'";
    return false;
  }
  return true;
}

bool parse_switches_into(std::string_view s, SwitchPath& path,
                         std::string& error) {
  path.clear();
  if (s.empty()) return true;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(';', pos);
    const std::string_view tok =
        s.substr(pos, next == std::string_view::npos ? next : next - pos);
    std::uint32_t hop = 0;
    if (!parse_number_into(tok, "switch", hop, error)) return false;
    if (path.size() == SwitchPath::capacity()) {
      error = "too many switch hops (max " +
              std::to_string(SwitchPath::capacity()) + ")";
      return false;
    }
    path.push_back(SwitchId(hop));
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  return true;
}

bool parse_fields(const std::array<std::string_view, 6>& f, FlowRecord& out,
                  std::string& error) {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  if (!parse_number_into(f[0], "start_ns", out.start_time, error) ||
      !parse_number_into(f[1], "src", src, error) ||
      !parse_number_into(f[2], "dst", dst, error) ||
      !parse_number_into(f[3], "bytes", out.bytes, error) ||
      !parse_number_into(f[4], "duration_ns", out.duration, error)) {
    return false;
  }
  out.src = GpuId(src);
  out.dst = GpuId(dst);
  return parse_switches_into(f[5], out.switches, error);
}

/// Decode one data line (trailing '\r' already stripped, non-blank, no
/// NUL). Plain lines split on commas in place; lines with quotes or
/// interior CRs take the legacy csv::parse_line path so RFC-4180 quoting
/// keeps its exact semantics.
bool parse_data_line(std::string_view line, FlowRecord& out,
                     std::string& error) {
  if (line.find('"') != std::string_view::npos ||
      line.find('\r') != std::string_view::npos) {
    std::vector<std::string> row;
    try {
      row = csv::parse_line(line);
    } catch (const std::exception& e) {
      error = e.what();
      return false;
    }
    if (row.size() != 6) {
      error = "expected 6 fields, got " + std::to_string(row.size());
      return false;
    }
    return parse_fields({row[0], row[1], row[2], row[3], row[4], row[5]}, out,
                        error);
  }

  std::array<std::string_view, 6> fields;
  std::size_t count = 0;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = line.find(',', pos);
    const std::string_view tok =
        next == std::string_view::npos ? line.substr(pos)
                                       : line.substr(pos, next - pos);
    if (count < fields.size()) fields[count] = tok;
    ++count;
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  if (count != fields.size()) {
    error = "expected 6 fields, got " + std::to_string(count);
    return false;
  }
  return parse_fields(fields, out, error);
}

/// One chunk's worth of decoded rows. `errors[i].line` is 1-based within
/// the chunk; the stitch pass rebases it to the global physical line.
struct ChunkResult {
  FlowTrace trace;
  std::vector<ParseError> errors;
  std::size_t lines = 0;
};

void parse_chunk(std::string_view chunk, ChunkResult& out) {
  std::string error;
  std::size_t pos = 0;
  while (pos < chunk.size()) {
    const std::size_t nl = chunk.find('\n', pos);
    std::string_view line =
        chunk.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? chunk.size() : nl + 1;
    ++out.lines;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    if (line.find('\0') != std::string_view::npos) {
      out.errors.push_back({out.lines, "embedded NUL byte in row"});
      continue;
    }
    FlowRecord record;
    if (parse_data_line(line, record, error)) {
      out.trace.add(std::move(record));
    } else {
      out.errors.push_back({out.lines, std::move(error)});
      error.clear();
    }
  }
}

/// Locate the header (the first non-blank physical line). On success,
/// `result` is untouched and data starts at `data_offset` after
/// `header_lines` physical lines; on failure, `result` carries the exact
/// diagnostic-and-stop behaviour of the serial parser.
bool scan_header(std::string_view buffer, std::size_t& data_offset,
                 std::size_t& header_lines, ParseResult& result) {
  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < buffer.size()) {
    const std::size_t nl = buffer.find('\n', pos);
    std::string_view line =
        buffer.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? buffer.size() : nl + 1;
    ++lines;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    // First non-blank line must be the header; anything else means the
    // file is not a flow CSV at all, so don't guess at its rows.
    result.lines_read = lines;
    if (line.find('\0') != std::string_view::npos) {
      result.errors.push_back({lines, "embedded NUL byte in row"});
      return false;
    }
    if (line != kHeader) {
      result.errors.push_back(
          {lines, "expected header '" + std::string(kHeader) + "', got '" +
                      std::string(line) + "'"});
      return false;
    }
    data_offset = pos;
    header_lines = lines;
    return true;
  }
  result.lines_read = lines;
  result.errors.push_back({lines, "empty input (missing header)"});
  return false;
}

}  // namespace

void write_csv(std::ostream& os, const FlowTrace& trace) {
  os << kHeader << '\n';
  for (const FlowRecord& f : trace) {
    const std::array<std::string, 6> row = {
        std::to_string(f.start_time),    std::to_string(f.src.value()),
        std::to_string(f.dst.value()),   std::to_string(f.bytes),
        std::to_string(f.duration),      join_switches(f.switches)};
    csv::write_row(os, row);
  }
}

ParseResult read_csv_checked(std::string_view buffer,
                             const CsvParseOptions& options) {
  const obs::Span span("ingest.csv");
  const obs::ScopedTimer timer(ingest_parse_seconds());

  ParseResult result;
  std::size_t data_offset = 0;
  std::size_t header_lines = 0;
  if (!scan_header(buffer, data_offset, header_lines, result)) {
    ingest_bytes_counter().inc(buffer.size());
    ingest_bad_rows_counter().inc(result.errors.size());
    return result;
  }
  const std::string_view data = buffer.substr(data_offset);

  // Chunk count: bounded by the thread budget and by the floor on work per
  // chunk. The split depends only on (buffer, options) — never on
  // scheduling — which is the determinism argument (DESIGN.md, "Ingest
  // formats"): every line lands in the same chunk with the same local line
  // number at any thread count, and chunks are stitched in file order.
  const std::size_t threads = ThreadPool::resolve(options.num_threads);
  const std::size_t min_chunk = std::max<std::size_t>(1, options.min_chunk_bytes);
  const std::size_t num_chunks =
      std::max<std::size_t>(1, std::min(threads, data.size() / min_chunk));

  std::vector<std::string_view> chunks;
  chunks.reserve(num_chunks);
  std::size_t begin = 0;
  const std::size_t per_chunk = data.size() / num_chunks;
  while (begin < data.size()) {
    std::size_t end = data.size();
    if (chunks.size() + 1 < num_chunks) {
      // Round the nominal boundary forward to just past the next newline,
      // so every physical line lives in exactly one chunk.
      const std::size_t target = std::min(data.size(), begin + per_chunk);
      const std::size_t nl = data.find('\n', target == 0 ? 0 : target - 1);
      end = nl == std::string_view::npos ? data.size() : nl + 1;
    }
    chunks.push_back(data.substr(begin, end - begin));
    begin = end;
  }

  std::vector<ChunkResult> decoded(chunks.size());
  if (chunks.size() > 1) {
    // Each task owns its pre-sized slot; no shared mutable state.
    ThreadPool pool(chunks.size() - 1);
    parallel_for(&pool, chunks.size(),
                 [&](std::size_t i) { parse_chunk(chunks[i], decoded[i]); });
  } else if (!chunks.empty()) {
    parse_chunk(chunks[0], decoded[0]);
  }

  // Stitch in file order: rebase error lines to global physical numbers
  // and concatenate the chunk traces. Chunks of a time-sorted file are
  // sorted runs meeting in order, so append() keeps the result
  // known-sorted — the degenerate k-way merge, with zero physical sorts.
  std::size_t line_offset = header_lines;
  for (ChunkResult& chunk : decoded) {
    for (ParseError& e : chunk.errors) {
      result.errors.push_back({line_offset + e.line, std::move(e.message)});
    }
    result.trace.append(std::move(chunk.trace));
    line_offset += chunk.lines;
  }
  result.lines_read = line_offset;

  ingest_bytes_counter().inc(buffer.size());
  ingest_rows_counter().inc(result.trace.size());
  ingest_bad_rows_counter().inc(result.errors.size());
  ingest_chunks_counter().inc(chunks.size());
  return result;
}

ParseResult read_csv_checked(std::istream& is, const CsvParseOptions& options) {
  const std::string buffer(std::istreambuf_iterator<char>(is), {});
  return read_csv_checked(std::string_view(buffer), options);
}

FlowTrace read_csv(std::istream& is, const CsvParseOptions& options) {
  ParseResult result = read_csv_checked(is, options);
  if (!result.ok()) {
    const ParseError& first = result.errors.front();
    std::string message =
        "flow csv: line " + std::to_string(first.line) + ": " + first.message;
    if (result.errors.size() > 1) {
      message += " (+" + std::to_string(result.errors.size() - 1) +
                 " more bad lines)";
    }
    throw std::runtime_error(message);
  }
  return std::move(result.trace);
}

void write_csv_file(const std::string& path, const FlowTrace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("flow csv: cannot open for write: " + path);
  write_csv(os, trace);
}

FlowTrace read_csv_file(const std::string& path,
                        const CsvParseOptions& options) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("flow csv: cannot open for read: " + path);
  return read_csv(is, options);
}

}  // namespace llmprism
