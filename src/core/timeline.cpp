#include "llmprism/core/timeline.hpp"

#include <algorithm>
#include <unordered_map>

namespace llmprism {

namespace {

/// Classify one flow from `gpu`'s perspective, its pair's type known.
TimelineEvent make_event(const FlowRecord& f, GpuId gpu, CommType type) {
  TimelineEvent e;
  e.start = f.start_time;
  e.end = f.end_time();
  e.peer = f.src == gpu ? f.dst : f.src;
  if (type == CommType::kDP) {
    e.kind = TimelineEventKind::kDp;
  } else {
    e.kind = f.src == gpu ? TimelineEventKind::kPpSend
                          : TimelineEventKind::kPpRecv;
  }
  return e;
}

/// Map-probing fallback for the unordered_map-typed entry points.
CommType type_of(const FlowRecord& f,
                 const std::unordered_map<GpuPair, CommType>& types) {
  const auto it = types.find(f.pair());
  return it != types.end() ? it->second : CommType::kPP;
}

/// Build the timeline of one GPU from its (chronological) comm events.
GpuTimeline assemble(GpuId gpu, std::vector<TimelineEvent> comm_events,
                     const TimelineConfig& config,
                     SegmenterStats* segmenter_stats = nullptr) {
  GpuTimeline timeline;
  timeline.gpu = gpu;
  std::sort(comm_events.begin(), comm_events.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });

  // ---- step boundaries from DP bursts ----
  std::vector<TimeNs> dp_starts;
  std::vector<std::size_t> dp_event_idx;
  for (std::size_t i = 0; i < comm_events.size(); ++i) {
    if (comm_events[i].kind == TimelineEventKind::kDp) {
      dp_starts.push_back(comm_events[i].start);
      dp_event_idx.push_back(i);
    }
  }

  if (!dp_starts.empty()) {
    const auto burst_starts =
        segment_by_gaps(dp_starts, config.segmenter, segmenter_stats);
    TimeNs prev_end = comm_events.empty() ? 0 : comm_events.front().start;
    for (std::size_t b = 0; b < burst_starts.size(); ++b) {
      const std::size_t seg_begin = burst_starts[b];
      const std::size_t seg_end = b + 1 < burst_starts.size()
                                      ? burst_starts[b + 1]
                                      : dp_starts.size();
      ReconstructedStep step;
      step.index = b;
      step.begin = prev_end;
      step.dp_begin = dp_starts[seg_begin];
      step.dp_end = step.dp_begin;
      for (std::size_t i = seg_begin; i < seg_end; ++i) {
        step.dp_end = std::max(step.dp_end, comm_events[dp_event_idx[i]].end);
      }
      step.end = step.dp_end;
      prev_end = step.end;
      timeline.steps.push_back(step);
    }
  }

  // ---- fill compute gaps between communication events ----
  timeline.events.reserve(comm_events.size() * 2);
  TimeNs busy_until = comm_events.empty() ? 0 : comm_events.front().start;
  for (const TimelineEvent& e : comm_events) {
    if (e.start - busy_until >= config.min_compute_gap) {
      TimelineEvent gap;
      gap.kind = TimelineEventKind::kCompute;
      gap.start = busy_until;
      gap.end = e.start;
      timeline.events.push_back(gap);
    }
    timeline.events.push_back(e);
    busy_until = std::max(busy_until, e.end);
  }
  return timeline;
}

}  // namespace

TimelineReconstructor::TimelineReconstructor(TimelineConfig config)
    : config_(config) {}

GpuTimeline TimelineReconstructor::reconstruct(
    GpuId gpu, const FlowTrace& job_trace,
    const std::unordered_map<GpuPair, CommType>& types) const {
  std::vector<TimelineEvent> comm_events;
  for (const FlowRecord& f : job_trace) {
    if (f.src != gpu && f.dst != gpu) continue;
    comm_events.push_back(make_event(f, gpu, type_of(f, types)));
  }
  return assemble(gpu, std::move(comm_events), config_);
}

std::vector<GpuTimeline> TimelineReconstructor::reconstruct_all(
    const FlowTrace& job_trace,
    const std::unordered_map<GpuPair, CommType>& types,
    SegmenterStats* segmenter_stats) const {
  std::vector<CommType> flow_types;
  flow_types.reserve(job_trace.size());
  for (const FlowRecord& f : job_trace) {
    flow_types.push_back(type_of(f, types));
  }
  return reconstruct_all(job_trace, flow_types, segmenter_stats);
}

std::vector<GpuTimeline> TimelineReconstructor::reconstruct_all(
    const FlowTrace& job_trace, std::span<const CommType> flow_types,
    SegmenterStats* segmenter_stats) const {
  // Single pass over the trace: bucket every flow under both endpoints.
  std::unordered_map<GpuId, std::vector<TimelineEvent>> per_gpu;
  for (std::size_t i = 0; i < job_trace.size(); ++i) {
    const FlowRecord& f = job_trace[i];
    per_gpu[f.src].push_back(make_event(f, f.src, flow_types[i]));
    per_gpu[f.dst].push_back(make_event(f, f.dst, flow_types[i]));
  }
  std::vector<GpuId> gpus;
  gpus.reserve(per_gpu.size());
  for (const auto& [gpu, events] : per_gpu) gpus.push_back(gpu);
  std::sort(gpus.begin(), gpus.end());

  std::vector<GpuTimeline> out;
  out.reserve(gpus.size());
  for (const GpuId g : gpus) {
    out.push_back(assemble(g, std::move(per_gpu[g]), config_,
                           segmenter_stats));
  }
  return out;
}

}  // namespace llmprism
