// FlowView / FlowColumns — the columnar flow representation of the
// analysis plane (DESIGN.md §13).
//
// FlowView is a non-owning structure-of-arrays view over one window of
// flows: one span per FlowRecord field plus the switch paths in CSR form
// (offsets + flat hop ids). It is the common input type of every analysis
// stage — constructible for free from an LFT mapping (the columns alias
// the mmap'd file, zero copies) and by one transpose from the AoS
// FlowTrace. The view carries the sortedness fact the data plane already
// tracks, so binary-search windowing and the per-pair CSR index work
// without re-verification.
//
// FlowColumns is the owning SoA counterpart: the per-job gather target of
// the flow router, the analysis buffer of the online monitor, and the
// adapter that turns a FlowTrace into a view. It exposes a FlowTrace-like
// read API (size / operator[] / value-yielding iteration) so report
// consumers iterate flows without caring which representation backs them.
//
// Lifetime rules: a FlowView never owns storage. Views over a
// MappedFlowTrace are invalidated when the mapping is destroyed or moved;
// views over FlowColumns when the columns are destroyed or mutated.
// Results that outlive the input (JobAnalysis) therefore hold owning
// FlowColumns gathered from the view, never the view itself.
//
// Materializing an AoS FlowTrace from columnar data is the one operation
// the fast path must never perform; it is counted in
// `llmprism_flow_materializations_total` so "zero-materialization" is an
// asserted property, not a hope (tests/test_columnar_equivalence.cpp).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "llmprism/common/time.hpp"
#include "llmprism/flow/trace.hpp"

namespace llmprism {

/// Non-owning SoA view of a flow window. Cheap to copy (seven spans and a
/// flag); pass by value or const reference.
struct FlowView {
  std::span<const TimeNs> start_ns;
  std::span<const std::uint32_t> src;
  std::span<const std::uint32_t> dst;
  std::span<const std::uint64_t> bytes;
  std::span<const DurationNs> duration_ns;
  /// CSR switch paths: offsets has size() + 1 entries (offsets[0] == 0);
  /// flow i traverses switch_ids[offsets[i] .. offsets[i+1]). Both spans
  /// may be empty for traces without switch information.
  std::span<const std::uint64_t> switch_offsets;
  std::span<const std::uint32_t> switch_ids;
  /// Rows are in FlowStartTimeLess order (a verified fact, not a guess:
  /// set from FlowTrace's sortedness cache or LFT's validated header flag).
  bool sorted = false;

  [[nodiscard]] std::size_t size() const { return start_ns.size(); }
  [[nodiscard]] bool empty() const { return start_ns.empty(); }

  [[nodiscard]] TimeNs end_ns(std::size_t i) const {
    return start_ns[i] + duration_ns[i];
  }
  [[nodiscard]] GpuPair pair(std::size_t i) const {
    return GpuPair(GpuId(src[i]), GpuId(dst[i]));
  }
  /// Canonical unordered pair key: (min << 32) | max.
  [[nodiscard]] std::uint64_t pair_key(std::size_t i) const {
    const std::uint32_t a = src[i];
    const std::uint32_t b = dst[i];
    const std::uint32_t lo = a < b ? a : b;
    const std::uint32_t hi = a < b ? b : a;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }
  [[nodiscard]] std::span<const std::uint32_t> switches(std::size_t i) const {
    if (switch_offsets.empty()) return {};
    return switch_ids.subspan(switch_offsets[i],
                              switch_offsets[i + 1] - switch_offsets[i]);
  }
  /// Average bandwidth of flow i in Gbit/s (0 when the duration is 0).
  [[nodiscard]] double bandwidth_gbps(std::size_t i) const {
    if (duration_ns[i] <= 0) return 0.0;
    return static_cast<double>(bytes[i]) * 8.0 /
           static_cast<double>(duration_ns[i]);
  }

  /// Materialize one record (switch path truncated to SwitchPath capacity
  /// never happens in practice: LFT validation and the collector both bound
  /// hops to the Clos diameter).
  [[nodiscard]] FlowRecord record(std::size_t i) const {
    FlowRecord f;
    f.start_time = start_ns[i];
    f.src = GpuId(src[i]);
    f.dst = GpuId(dst[i]);
    f.bytes = bytes[i];
    f.duration = duration_ns[i];
    for (const std::uint32_t sw : switches(i)) {
      f.switches.push_back(SwitchId(sw));
    }
    return f;
  }

  /// Subview of rows [begin, end); sortedness is inherited (a contiguous
  /// slice of a sorted sequence is sorted). CSR offsets stay absolute —
  /// switches(i) indexes them relative to the slice, so the sliced
  /// offsets/ids spans keep aliasing the parent storage.
  [[nodiscard]] FlowView slice(std::size_t begin, std::size_t end) const {
    FlowView v;
    const std::size_t n = end - begin;
    v.start_ns = start_ns.subspan(begin, n);
    v.src = src.subspan(begin, n);
    v.dst = dst.subspan(begin, n);
    v.bytes = bytes.subspan(begin, n);
    v.duration_ns = duration_ns.subspan(begin, n);
    if (!switch_offsets.empty()) {
      v.switch_offsets = switch_offsets.subspan(begin, n + 1);
      v.switch_ids = switch_ids;
    }
    v.sorted = sorted;
    return v;
  }

  /// First row with start_ns >= t (binary search; requires sorted).
  [[nodiscard]] std::size_t lower_bound_start(TimeNs t) const;

  /// Rows whose start time falls in [w.begin, w.end) — binary search over
  /// the start_ns span, zero copies. Requires a sorted view (throws
  /// std::logic_error otherwise, matching FlowTrace::window).
  [[nodiscard]] FlowView window(TimeWindow w) const;

  /// Earliest start / latest end over all rows; {0,0} when empty (same
  /// semantics as FlowTrace::span — one O(N) pass, durations vary).
  [[nodiscard]] TimeWindow time_span() const;

  /// True iff rows are in FlowStartTimeLess order (O(N) verify; used to
  /// seed `sorted` for storage the data plane has no cached fact about).
  [[nodiscard]] bool verify_sorted() const;
};

/// Owning SoA flow storage. The vectors are public — the router's gather
/// and the monitor's merge write them directly; `sorted` is maintained by
/// the mutation helpers exactly like FlowTrace's cached flag.
class FlowColumns {
 public:
  FlowColumns() = default;
  /// Transpose an AoS trace (one pass; sortedness copies from the trace's
  /// cache, no re-verify).
  explicit FlowColumns(const FlowTrace& trace);

  [[nodiscard]] FlowView view() const {
    FlowView v;
    v.start_ns = start_ns;
    v.src = src;
    v.dst = dst;
    v.bytes = bytes;
    v.duration_ns = duration_ns;
    v.switch_offsets = switch_offsets;
    v.switch_ids = switch_ids;
    v.sorted = sorted;
    return v;
  }

  [[nodiscard]] std::size_t size() const { return start_ns.size(); }
  [[nodiscard]] bool empty() const { return start_ns.empty(); }
  [[nodiscard]] bool is_sorted() const { return sorted; }

  /// Materialize row i by value (the read API report consumers iterate
  /// with; no AoS array is ever built).
  [[nodiscard]] FlowRecord operator[](std::size_t i) const {
    return view().record(i);
  }

  /// Value-yielding iterator: `for (const FlowRecord& f : columns)` binds
  /// the loop reference to the materialized temporary — same usage as
  /// FlowTrace, no FlowRecord array behind it.
  class const_iterator {
   public:
    using value_type = FlowRecord;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    const_iterator(const FlowColumns* c, std::size_t i) : c_(c), i_(i) {}
    [[nodiscard]] FlowRecord operator*() const { return (*c_)[i_]; }
    const_iterator& operator++() { ++i_; return *this; }
    const_iterator operator++(int) { auto t = *this; ++i_; return t; }
    friend bool operator==(const const_iterator&,
                           const const_iterator&) = default;

   private:
    const FlowColumns* c_ = nullptr;
    std::size_t i_ = 0;
  };
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size()}; }

  void reserve(std::size_t rows, std::size_t switch_entries = 0);
  void clear();

  /// Append one record; maintains `sorted` incrementally like
  /// FlowTrace::add.
  void push_back(const FlowRecord& f);

  /// Append row i of `v` (including its switch hops). The caller settles
  /// `sorted` (gathers know the answer statically).
  void append_row(const FlowView& v, std::size_t i);

  /// Gather the given rows of `v` into fresh columns. `rows_sorted_subset`
  /// states that `rows` is increasing — then sortedness is inherited from
  /// `v` (a subsequence of a sorted sequence is sorted).
  [[nodiscard]] static FlowColumns gather(const FlowView& v,
                                          std::span<const std::uint32_t> rows,
                                          bool rows_sorted_subset);

  /// K-way merge of sorted runs by FlowStartTimeLess, ties to the lower
  /// run index — columnar counterpart of FlowTrace::merge_sorted_runs.
  [[nodiscard]] static FlowColumns merge_sorted_runs(
      std::vector<FlowColumns> runs);

  /// Merge a sorted `other` into this (sorted) storage in O(N + M); ties
  /// keep this side's rows first. Mirrors FlowTrace::merge_sorted.
  void merge_sorted(FlowColumns other);

  /// Drop every row with start_ns < t (requires sorted; binary search +
  /// prefix erase). Mirrors FlowTrace::drop_before.
  void drop_before(TimeNs t);

  /// Physically sort by FlowStartTimeLess via argsort + gather (no
  /// FlowRecord array). No-op when already sorted.
  void sort();

  // Column storage. switch_offsets is either empty or size()+1 entries.
  std::vector<TimeNs> start_ns;
  std::vector<std::uint32_t> src;
  std::vector<std::uint32_t> dst;
  std::vector<std::uint64_t> bytes;
  std::vector<DurationNs> duration_ns;
  std::vector<std::uint64_t> switch_offsets;
  std::vector<std::uint32_t> switch_ids;
  bool sorted = true;
};

/// Materialize an owning AoS FlowTrace from a view. This is the operation
/// the zero-copy path must never need; every call increments
/// `llmprism_flow_materializations_total`.
[[nodiscard]] FlowTrace materialize(const FlowView& view);

/// Current value of the materialization counter (for tests).
[[nodiscard]] std::uint64_t flow_materializations_total();

}  // namespace llmprism
