// Unit tests for the collection-noise model and network fault injection.
#include <gtest/gtest.h>

#include "llmprism/simulator/faults.hpp"
#include "llmprism/simulator/noise.hpp"

namespace llmprism {
namespace {

FlowRecord flow(TimeNs t, std::uint32_t src, std::uint32_t dst,
                std::uint64_t bytes, DurationNs dur = 1000,
                std::initializer_list<std::uint32_t> switches = {}) {
  FlowRecord f;
  f.start_time = t;
  f.src = GpuId(src);
  f.dst = GpuId(dst);
  f.bytes = bytes;
  f.duration = dur;
  for (const auto s : switches) f.switches.push_back(SwitchId(s));
  return f;
}

FlowTrace bursty_trace(int bursts, int flows_per_burst,
                       std::vector<std::uint64_t> sizes) {
  FlowTrace t;
  for (int b = 0; b < bursts; ++b) {
    for (int i = 0; i < flows_per_burst; ++i) {
      t.add(flow(b * kSecond + i * kMillisecond, 0, 8,
                 sizes[static_cast<std::size_t>(i) % sizes.size()]));
    }
  }
  t.sort();
  return t;
}

// ---------------------------------------------------------------------------
// NoiseConfig / apply_noise

TEST(NoiseTest, DisabledNoiseIsIdentity) {
  const auto trace = bursty_trace(3, 6, {100, 200});
  Rng rng(1);
  const auto out = apply_noise(trace, NoiseConfig{}, rng);
  ASSERT_EQ(out.size(), trace.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], trace[i]);
}

TEST(NoiseTest, DropRateRemovesRoughlyTheRightFraction) {
  const auto trace = bursty_trace(100, 20, {100});
  NoiseConfig cfg;
  cfg.drop_rate = 0.3;
  Rng rng(2);
  const auto out = apply_noise(trace, cfg, rng);
  const double kept = static_cast<double>(out.size()) /
                      static_cast<double>(trace.size());
  EXPECT_NEAR(kept, 0.7, 0.03);
}

TEST(NoiseTest, DuplicatesAddFlows) {
  const auto trace = bursty_trace(50, 20, {100});
  NoiseConfig cfg;
  cfg.duplicate_rate = 0.2;
  Rng rng(3);
  const auto out = apply_noise(trace, cfg, rng);
  EXPECT_GT(out.size(), trace.size());
  EXPECT_NEAR(static_cast<double>(out.size()) /
                  static_cast<double>(trace.size()),
              1.2, 0.05);
  EXPECT_TRUE(out.is_sorted());
}

TEST(NoiseTest, SizeJitterPerturbsSizes) {
  const auto trace = bursty_trace(50, 10, {1'000'000});
  NoiseConfig cfg;
  cfg.size_jitter_rate = 1.0;
  cfg.size_jitter_frac = 0.02;
  Rng rng(4);
  const auto out = apply_noise(trace, cfg, rng);
  std::size_t changed = 0;
  for (const FlowRecord& f : out) {
    EXPECT_NEAR(static_cast<double>(f.bytes), 1e6, 2.1e4);
    if (f.bytes != 1'000'000) ++changed;
  }
  EXPECT_GT(changed, out.size() / 2);
}

TEST(NoiseTest, PartialRecordsShrinkSizeAndDuration) {
  const auto trace = bursty_trace(50, 10, {1'000'000});
  NoiseConfig cfg;
  cfg.partial_record_rate = 1.0;
  Rng rng(14);
  const auto out = apply_noise(trace, cfg, rng);
  ASSERT_EQ(out.size(), trace.size());
  for (const FlowRecord& f : out) {
    EXPECT_LT(f.bytes, 1'000'000u);
    EXPECT_GE(f.bytes, 100'000u * 1 - 1);  // cut to 10-90%
    EXPECT_LT(f.duration, 1000);
  }
}

TEST(NoiseTest, PartialRecordRateZeroIsNoop) {
  const auto trace = bursty_trace(5, 10, {1'000'000});
  NoiseConfig cfg;
  cfg.partial_record_rate = 0.0;
  cfg.drop_rate = 1e-12;
  Rng rng(15);
  const auto out = apply_noise(trace, cfg, rng);
  for (const FlowRecord& f : out) EXPECT_EQ(f.bytes, 1'000'000u);
}

TEST(NoiseTest, TimeJitterKeepsSorted) {
  const auto trace = bursty_trace(20, 10, {100});
  NoiseConfig cfg;
  cfg.time_jitter = 100 * kMicrosecond;
  Rng rng(5);
  const auto out = apply_noise(trace, cfg, rng);
  EXPECT_TRUE(out.is_sorted());
  EXPECT_EQ(out.size(), trace.size());
}

TEST(NoiseTest, TruncationKeepsOnlyHeadSizeOfBurst) {
  // One pair, always degraded, truncation probability 1: every burst keeps
  // only flows matching its first flow's size.
  const auto trace = bursty_trace(10, 8, {100, 200, 300, 400});
  NoiseConfig cfg;
  cfg.degraded_pair_fraction = 1.0;
  cfg.truncation_prob_min = 1.0;
  cfg.truncation_prob_max = 1.0;
  cfg.burst_gap = 100 * kMillisecond;
  Rng rng(6);
  const auto out = apply_noise(trace, cfg, rng);
  // 8 flows per burst cycle sizes 100..400 twice; head size is 100 -> keep 2.
  EXPECT_EQ(out.size(), 20u);
  for (const FlowRecord& f : out) EXPECT_EQ(f.bytes, 100u);
}

TEST(NoiseTest, TruncationLeavesSingleSizePairsIntact) {
  const auto trace = bursty_trace(10, 8, {100});
  NoiseConfig cfg;
  cfg.degraded_pair_fraction = 1.0;
  cfg.truncation_prob_min = 1.0;
  cfg.truncation_prob_max = 1.0;
  Rng rng(7);
  const auto out = apply_noise(trace, cfg, rng);
  EXPECT_EQ(out.size(), trace.size());
}

TEST(NoiseTest, ZeroDegradedFractionNeverTruncates) {
  const auto trace = bursty_trace(10, 8, {100, 200});
  NoiseConfig cfg;
  cfg.degraded_pair_fraction = 0.0;
  cfg.drop_rate = 1e-12;  // force the noise path on
  Rng rng(8);
  const auto out = apply_noise(trace, cfg, rng);
  EXPECT_EQ(out.size(), trace.size());
}

TEST(NoiseTest, DeterministicGivenSeed) {
  const auto trace = bursty_trace(30, 10, {100, 200});
  NoiseConfig cfg;
  cfg.drop_rate = 0.2;
  cfg.duplicate_rate = 0.1;
  cfg.degraded_pair_fraction = 0.5;
  Rng rng1(9), rng2(9);
  const auto a = apply_noise(trace, cfg, rng1);
  const auto b = apply_noise(trace, cfg, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

// ---------------------------------------------------------------------------
// Switch degradation

TEST(FaultsTest, RejectsBadFactor) {
  EXPECT_THROW(
      apply_switch_degradation(FlowTrace{}, {{SwitchId(0), {0, 1}, 0.0}}),
      std::invalid_argument);
  EXPECT_THROW(
      apply_switch_degradation(FlowTrace{}, {{SwitchId(0), {0, 1}, 1.5}}),
      std::invalid_argument);
}

TEST(FaultsTest, StretchesOnlyMatchingFlows) {
  FlowTrace t;
  t.add(flow(100, 0, 8, 1, 1000, {3}));
  t.add(flow(100, 0, 8, 1, 1000, {4}));       // other switch
  t.add(flow(9'000'000'000, 0, 8, 1, 1000, {3}));  // outside window
  const std::vector<SwitchDegradationSpec> specs{
      {SwitchId(3), TimeWindow{0, kSecond}, 0.25}};
  const auto out = apply_switch_degradation(t, specs);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].duration, 4000);
  EXPECT_EQ(out[1].duration, 1000);
  EXPECT_EQ(out[2].duration, 1000);
}

TEST(FaultsTest, WorstHopWins) {
  FlowTrace t;
  t.add(flow(100, 0, 8, 1, 1000, {3, 4}));
  const std::vector<SwitchDegradationSpec> specs{
      {SwitchId(3), TimeWindow{0, kSecond}, 0.5},
      {SwitchId(4), TimeWindow{0, kSecond}, 0.25}};
  const auto out = apply_switch_degradation(t, specs);
  EXPECT_EQ(out[0].duration, 4000);
}

TEST(FaultsTest, NoSpecsIsIdentity) {
  FlowTrace t;
  t.add(flow(100, 0, 8, 1, 1000, {3}));
  const auto out = apply_switch_degradation(t, {});
  EXPECT_EQ(out[0], t[0]);
}

TEST(FaultsTest, DegradationLowersObservedBandwidth) {
  FlowTrace t;
  t.add(flow(100, 0, 8, 2500, 1000, {3}));
  const double before = t[0].bandwidth_gbps();
  const auto out = apply_switch_degradation(
      t, {{SwitchId(3), TimeWindow{0, kSecond}, 0.5}});
  EXPECT_DOUBLE_EQ(out[0].bandwidth_gbps(), before / 2);
}

}  // namespace
}  // namespace llmprism
