// The LLMPrism public API, in one include.
//
//   #include "llmprism/llmprism.hpp"
//
// pulls in everything an integrator needs: topology modelling, flow traces
// and CSV IO, the simulator (workload + noise generation), the analysis
// pipeline (Prism, PrismSession, OnlineMonitor, rendering), and the obs
// registry/exporters. Fine-grained headers under llmprism/<area>/ remain
// available for builds that want to include less, but this is THE entry
// point — examples/ and tools/ use it exclusively.
#pragma once

// ---- common vocabulary (ids, time, comm types, CLI flags) ----
#include "llmprism/common/comm_type.hpp"
#include "llmprism/common/flags.hpp"
#include "llmprism/common/ids.hpp"
#include "llmprism/common/log.hpp"
#include "llmprism/common/time.hpp"

// ---- physical topology (provider-known, the only non-flow input) ----
#include "llmprism/topology/topology.hpp"

// ---- flow data plane: records, traces, CSV + binary (LFT) import/export ----
#include "llmprism/flow/flow.hpp"
#include "llmprism/flow/io.hpp"
#include "llmprism/flow/lft.hpp"
#include "llmprism/flow/trace.hpp"

// ---- workload + collection-noise simulator (ground-truthed traces) ----
#include "llmprism/simulator/cluster_sim.hpp"
#include "llmprism/simulator/ground_truth.hpp"
#include "llmprism/simulator/job_config.hpp"
#include "llmprism/simulator/noise.hpp"

// ---- the analysis pipeline (the paper's contribution) ----
#include "llmprism/core/attribution.hpp"
#include "llmprism/core/comm_type.hpp"
#include "llmprism/core/diagnosis.hpp"
#include "llmprism/core/job_recognition.hpp"
#include "llmprism/core/monitor.hpp"
#include "llmprism/core/parallelism_inference.hpp"
#include "llmprism/core/prism.hpp"
#include "llmprism/core/render.hpp"
#include "llmprism/core/session.hpp"
#include "llmprism/core/snapshot.hpp"
#include "llmprism/core/timeline.hpp"

// ---- self-observability (metrics registry, exporters, trace spans) ----
#include "llmprism/obs/metrics.hpp"
#include "llmprism/obs/trace_span.hpp"

// ---- job-facing observability plane (fleet exports) ----
#include "llmprism/export/config.hpp"
#include "llmprism/export/journal.hpp"
#include "llmprism/export/perfetto.hpp"
#include "llmprism/export/series.hpp"
#include "llmprism/export/view.hpp"

// ---- serving plane (prismd: framed ingest + HTTP query endpoints) ----
#include "llmprism/serve/daemon.hpp"
#include "llmprism/serve/frame.hpp"
#include "llmprism/serve/http.hpp"
