// prism — command-line front end, structured as subcommands:
//
//   prism analyze <flows.csv|flows.lft> [options]
//       one-shot diagnosis of a whole trace (CSV or binary LFT,
//       auto-detected by magic); --window S truncates to the first S
//       seconds.
//   prism monitor <flows.csv|flows.lft> --window S [options]
//       stream the trace through the OnlineMonitor in S-second analysis
//       windows (warm cross-window session by default; --no-carry for
//       stateless per-window analysis).
//   prism convert <in> <out> [--format csv|lft] [--chunk-seconds S]
//       translate between CSV and LFT (default output format by <out>
//       extension); --chunk-seconds splits the output into time-sliced
//       chunk files (<out base>.NNN.<ext>) a client can stream at prismd.
//   prism serve [options]
//       run the long-running diagnosis daemon (same entry point as the
//       prismd binary; see serve/daemon.hpp and DESIGN.md §14).
//
// Deprecated spellings keep working with a one-line warning:
//   prism <trace> [options]        ->  prism analyze <trace> [options]
//   prism analyze --monitor-window S  ->  prism monitor --window S
//
// Every subcommand shares one declarative flag parser (common/flags.hpp);
// an unknown option is always an error: exit code 2 plus a usage hint.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <numeric>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "llmprism/llmprism.hpp"

using namespace llmprism;

namespace {

void usage() {
  std::cerr <<
      "usage: prism <subcommand> [options]\n"
      "\n"
      "  analyze <trace> [options]   one-shot diagnosis of a flow trace\n"
      "  monitor <trace> --window S  windowed online monitoring of a trace\n"
      "  convert <in> <out>          translate CSV <-> LFT (and chunk)\n"
      "  serve [options]             run the prismd diagnosis daemon\n"
      "\n"
      "run 'prism <subcommand> --help' for the subcommand's options.\n"
      "input format (CSV or binary LFT) is auto-detected by magic.\n";
}

/// Options shared by `analyze` and `monitor`.
struct CommonOptions {
  TopologyConfig topology{.num_machines = 0, .gpus_per_machine = 8,
                          .machines_per_leaf = 16, .num_spines = 4};
  std::uint64_t ingest_threads = 0;
  bool json = false;
  bool timelines = false;
  bool no_reconstruct = false;
  bool no_attribute = false;
  std::string log_level;
  ExportConfig exports;
};

void add_common_flags(cli::FlagSet& flags, CommonOptions& o) {
  flags.flag("--machines", "N",
             "machines in the cluster (default: derived from the trace)",
             &o.topology.num_machines);
  flags.flag("--gpus-per-machine", "N", "GPUs per machine (default 8)",
             &o.topology.gpus_per_machine);
  flags.flag("--machines-per-leaf", "N", "machines per leaf switch",
             &o.topology.machines_per_leaf);
  flags.flag("--spines", "N", "spine switches", &o.topology.num_spines);
  flags.flag("--ingest-threads", "N", "CSV decode threads (0 = hardware)",
             &o.ingest_threads);
  flags.flag("--json", "emit the report as JSON instead of text", &o.json);
  flags.flag("--timelines", "include per-rank timeline lanes in text output",
             &o.timelines);
  flags.flag("--no-reconstruct", "skip timeline reconstruction (faster)",
             &o.no_reconstruct);
  flags.flag("--no-attribute", "skip root-cause attribution",
             &o.no_attribute);
  flags.flag("--log-level", "LEVEL", "debug|info|warn|error|off",
             &o.log_level);
  flags.flag("--perfetto-out", "FILE",
             "reconstructed timelines as Chrome trace JSON (ui.perfetto.dev)",
             &o.exports.perfetto_out);
  flags.flag("--series-out", "FILE",
             "per-job per-window metrics (OpenMetrics; .jsonl -> JSONL)",
             &o.exports.series_out);
  flags.flag("--journal-out", "FILE",
             "incident lifecycle journal (JSONL, open -> update -> resolve)",
             &o.exports.journal_out);
  flags.flag("--metrics-out", "FILE",
             "metrics registry dump (Prometheus text; .json -> JSON)",
             &o.exports.metrics_out);
  flags.flag("--trace-out", "FILE",
             "pipeline trace spans as Chrome trace_event JSON",
             &o.exports.trace_out);
}

/// Handle --help / parse errors uniformly. Returns -1 to proceed, else the
/// process exit code (0 for help, 2 for errors — including unknown
/// options, which FlagSet always rejects).
int finish_parse(const cli::FlagSet& flags, const cli::ParseResult& parsed) {
  if (parsed.help) {
    std::cout << flags.usage();
    return 0;
  }
  if (!parsed.ok) {
    for (const std::string& e : parsed.errors) {
      std::cerr << flags.program() << ": " << e << '\n';
    }
    std::cerr << "run '" << flags.program() << " --help' for usage\n";
    return 2;
  }
  return -1;
}

/// Apply --log-level / validate exports; returns -1 or an exit code.
int apply_common(const cli::FlagSet& flags, const CommonOptions& o) {
  if (!o.log_level.empty()) {
    const auto level = log::parse_level(o.log_level);
    if (!level) {
      std::cerr << flags.program() << ": unknown log level " << o.log_level
                << '\n';
      return 2;
    }
    log::set_level(*level);
  }
  if (const auto errors = o.exports.validate(); !errors.empty()) {
    for (const std::string& e : errors) {
      std::cerr << flags.program() << ": " << e << '\n';
    }
    return 2;
  }
  return -1;
}

/// Load a flow trace from either format, auto-detected by magic. On CSV
/// parse errors, prints up to 10 diagnostics and returns nullopt;
/// `format_out` is "csv" or "lft". Used by `prism convert`, which needs an
/// owning AoS trace for the writers; the analysis path uses load_flows.
std::optional<FlowTrace> load_trace(const std::string& path,
                                    std::size_t ingest_threads,
                                    std::string& format_out) {
  if (is_lft_file(path)) {
    format_out = "lft";
    try {
      const MappedFlowTrace mapped(path);
      return mapped.to_trace();
    } catch (const std::exception& e) {
      std::cerr << "prism: " << path << ": " << e.what() << '\n';
      return std::nullopt;
    }
  }
  format_out = "csv";
  std::ifstream in(path);
  if (!in) {
    std::cerr << "prism: cannot open " << path << '\n';
    return std::nullopt;
  }
  ParseResult parsed = read_csv_checked(in, {.num_threads = ingest_threads});
  if (!parsed.ok()) {
    constexpr std::size_t kMaxDiagnostics = 10;
    const std::size_t shown = std::min(parsed.errors.size(), kMaxDiagnostics);
    for (std::size_t e = 0; e < shown; ++e) {
      std::cerr << "prism: " << path << ':' << parsed.errors[e].line << ": "
                << parsed.errors[e].message << '\n';
    }
    if (parsed.errors.size() > shown) {
      std::cerr << "prism: ... and " << parsed.errors.size() - shown
                << " more bad lines\n";
    }
    return std::nullopt;
  }
  return std::move(parsed.trace);
}

/// The analysis input: a sorted columnar view plus whatever storage backs
/// it. A sorted LFT file is analyzed straight off the mapping — the view's
/// columns alias the mmap'd sections and no flow is ever copied. CSV input
/// (and the rare unsorted LFT) lands in owning columns, sorted once here
/// at the boundary.
struct LoadedFlows {
  std::optional<MappedFlowTrace> mapped;  ///< keeps LFT-backed views alive
  FlowColumns columns;                    ///< owning storage otherwise
  FlowView view;                          ///< what the pipeline consumes
  std::string format;                     ///< "csv" or "lft"
};

std::optional<LoadedFlows> load_flows(const std::string& path,
                                      std::size_t ingest_threads) {
  LoadedFlows out;
  if (is_lft_file(path)) {
    out.format = "lft";
    try {
      out.mapped.emplace(path);
    } catch (const std::exception& e) {
      std::cerr << "prism: " << path << ": " << e.what() << '\n';
      return std::nullopt;
    }
    out.view = out.mapped->view();
    if (out.view.sorted || out.view.verify_sorted()) {
      out.view.sorted = true;  // zero-copy fast path
      return out;
    }
    // Unsorted file: one boundary gather + sort into owning columns.
    std::vector<std::uint32_t> rows(out.view.size());
    std::iota(rows.begin(), rows.end(), 0u);
    out.columns = FlowColumns::gather(out.view, rows,
                                      /*rows_sorted_subset=*/false);
    out.columns.sort();
    out.mapped.reset();
    out.view = out.columns.view();
    return out;
  }
  out.format = "csv";
  std::ifstream in(path);
  if (!in) {
    std::cerr << "prism: cannot open " << path << '\n';
    return std::nullopt;
  }
  ParseResult parsed = read_csv_checked(in, {.num_threads = ingest_threads});
  if (!parsed.ok()) {
    constexpr std::size_t kMaxDiagnostics = 10;
    const std::size_t shown = std::min(parsed.errors.size(), kMaxDiagnostics);
    for (std::size_t e = 0; e < shown; ++e) {
      std::cerr << "prism: " << path << ':' << parsed.errors[e].line << ": "
                << parsed.errors[e].message << '\n';
    }
    if (parsed.errors.size() > shown) {
      std::cerr << "prism: ... and " << parsed.errors.size() - shown
                << " more bad lines\n";
    }
    return std::nullopt;
  }
  parsed.trace.sort();
  out.columns = FlowColumns(parsed.trace);
  out.view = out.columns.view();
  return out;
}

/// Fill in a trace-derived machine count when --machines was not given.
TopologyConfig derive_topology(TopologyConfig config, const FlowView& view) {
  if (config.num_machines == 0) {
    std::uint32_t max_gpu = 0;
    for (std::size_t i = 0; i < view.size(); ++i) {
      max_gpu = std::max({max_gpu, view.src[i], view.dst[i]});
    }
    config.num_machines = max_gpu / config.gpus_per_machine + 1;
  }
  return config;
}

PrismConfig prism_config_for(const CommonOptions& o) {
  PrismConfig config;
  config.reconstruct_timelines = !o.no_reconstruct;
  config.attribute = !o.no_attribute;
  return config;
}

int write_sink_files(ExportSinks& sinks) {
  const std::vector<std::string> errors = sinks.write_files();
  for (const std::string& e : errors) std::cerr << "prism: " << e << '\n';
  return errors.empty() ? 0 : 1;
}

int run_one_shot(const CommonOptions& options, const std::string& trace_path,
                 std::optional<double> window_seconds) {
  std::optional<LoadedFlows> loaded =
      load_flows(trace_path, options.ingest_threads);
  if (!loaded) return 1;
  // The pipeline consumes this sorted view; on a sorted LFT file its
  // columns alias the mapping for the whole run — zero flow copies.
  FlowView view = loaded->view;
  if (view.empty()) {
    std::cerr << "prism: trace is empty\n";
    return 1;
  }
  if (window_seconds) {
    const TimeNs begin = view.time_span().begin;
    view = view.window({begin, begin + from_seconds(*window_seconds)});
  }

  try {
    const auto topology =
        ClusterTopology::build(derive_topology(options.topology, view));
    PrismConfig prism_config = prism_config_for(options);
    if (const auto errors = prism_config.validate(); !errors.empty()) {
      std::cerr << "prism: invalid configuration:\n";
      for (const std::string& e : errors) std::cerr << "  - " << e << '\n';
      return 2;
    }
    ExportSinks sinks(options.exports);  // enables span tracing if requested

    const Prism prism(topology, prism_config);
    const PrismReport report = prism.analyze(view);
    sinks.add_window({view.time_span(), &report, {}});
    if (const int rc = write_sink_files(sinks); rc != 0) return rc;

    if (options.json) {
      write_report_json(std::cout, report);
      return 0;
    }
    std::cout << "analyzed " << view.size() << " flows (" << loaded->format
              << ") over " << to_seconds(view.time_span().length())
              << " s on a " << topology.num_gpus() << "-GPU topology\n\n"
              << render_report_summary(report);
    if (options.timelines) {
      for (const JobAnalysis& job : report.jobs) {
        if (job.timelines.empty()) continue;
        const std::size_t lanes =
            std::min<std::size_t>(8, job.timelines.size());
        std::cout << "\njob " << job.id << " timelines (first " << lanes
                  << " ranks):\n"
                  << render_timeline_chart(
                         std::span(job.timelines.data(), lanes),
                         {.width = 110});
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "prism: " << e.what() << '\n';
    return 1;
  }
  return 0;
}

int run_monitor_on(const CommonOptions& options, const std::string& trace_path,
                   double window_seconds, bool carry) {
  std::optional<LoadedFlows> loaded =
      load_flows(trace_path, options.ingest_threads);
  if (!loaded) return 1;
  const FlowView view = loaded->view;
  if (view.empty()) {
    std::cerr << "prism: trace is empty\n";
    return 1;
  }

  try {
    const auto topology =
        ClusterTopology::build(derive_topology(options.topology, view));
    MonitorConfig monitor_config;
    monitor_config.prism = prism_config_for(options);
    monitor_config.window = from_seconds(window_seconds);
    monitor_config.carry_state = carry;
    if (const auto errors = monitor_config.validate(); !errors.empty()) {
      std::cerr << "prism: invalid monitor configuration:\n";
      for (const std::string& e : errors) std::cerr << "  - " << e << '\n';
      return 2;
    }
    ExportSinks sinks(options.exports);  // enables span tracing if requested

    OnlineMonitor monitor(topology, monitor_config);
    std::vector<MonitorTick> ticks = monitor.ingest(view);
    if (auto tail = monitor.flush()) ticks.push_back(std::move(*tail));
    for (const MonitorTick& tick : ticks) {
      sinks.add_window(export_view(tick));
      if (options.json) {
        write_report_json(std::cout, tick.report);
        continue;
      }
      std::size_t alerts = 0;
      for (const JobAnalysis& job : tick.report.jobs) {
        alerts += job.step_alerts.size() + job.group_alerts.size();
      }
      std::cout << "window [" << to_seconds(tick.window.begin) << "s, "
                << to_seconds(tick.window.end) << "s): "
                << tick.report.telemetry.flows_total << " flows, "
                << tick.report.jobs.size() << " jobs, " << alerts
                << " job alerts\n";
    }
    if (!options.json) {
      const MonitorStats& stats = monitor.stats();
      std::cout << "\nmonitor: " << stats.windows_completed << " windows, "
                << stats.flows_ingested << " flows ingested ("
                << stats.flows_dropped_late << " dropped late), "
                << stats.stable_ids_created << " stable job ids, "
                << stats.step_alerts << " step / " << stats.group_alerts
                << " group alerts\n";
      if (const PrismSession* session = monitor.session()) {
        const SessionCounters& c = session->counters();
        std::cout << "session: recognition " << c.recognition_reuses
                  << " reused / " << c.recognition_rebuilds
                  << " rebuilt, pairs " << c.pairs_reused << " reused / "
                  << c.pairs_reclassified << " reclassified, boundary "
                  << c.boundary_steps_held << " held / "
                  << c.boundary_steps_carried << " carried, "
                  << c.ewma_step_alerts << " ewma alerts, "
                  << session->jobs_tracked() << " jobs tracked\n";
      }
    }
    return write_sink_files(sinks);
  } catch (const std::exception& e) {
    std::cerr << "prism: " << e.what() << '\n';
    return 1;
  }
}

int run_analyze(int argc, const char* const* argv, int begin) {
  CommonOptions common;
  std::optional<double> window_seconds;
  std::optional<double> monitor_window_seconds;
  bool no_carry = false;
  std::vector<std::string> positionals;

  cli::FlagSet flags("prism analyze");
  flags.flag("--window", "S", "analyze only the first S seconds of the trace",
             &window_seconds);
  add_common_flags(flags, common);
  flags.flag("--monitor-window", "S",
             "deprecated: use `prism monitor <trace> --window S`",
             &monitor_window_seconds);
  flags.flag("--no-carry",
             "with --monitor-window: disable the warm session", &no_carry);
  flags.positionals("trace", 1, 1, &positionals);

  if (const int rc = finish_parse(flags, flags.parse(argc, argv, begin));
      rc >= 0) {
    return rc;
  }
  if (const int rc = apply_common(flags, common); rc >= 0) return rc;

  if (monitor_window_seconds) {
    std::cerr << "prism: note: --monitor-window is deprecated; use `prism "
                 "monitor <trace> --window S`\n";
    return run_monitor_on(common, positionals[0], *monitor_window_seconds,
                          !no_carry);
  }
  return run_one_shot(common, positionals[0], window_seconds);
}

int run_monitor_cmd(int argc, const char* const* argv, int begin) {
  CommonOptions common;
  double window_seconds = 60.0;
  bool no_carry = false;
  std::vector<std::string> positionals;

  cli::FlagSet flags("prism monitor");
  flags.flag("--window", "S", "analysis window length in seconds (default 60)",
             &window_seconds);
  flags.flag("--no-carry",
             "disable the warm cross-window session (stateless analysis)",
             &no_carry);
  add_common_flags(flags, common);
  flags.alias("--monitor-window", "--window");
  flags.positionals("trace", 1, 1, &positionals);

  if (const int rc = finish_parse(flags, flags.parse(argc, argv, begin));
      rc >= 0) {
    return rc;
  }
  if (const int rc = apply_common(flags, common); rc >= 0) return rc;
  return run_monitor_on(common, positionals[0], window_seconds, !no_carry);
}

/// Insert a chunk index before the output extension:
/// "flows.lft" -> "flows.007.lft"; extensionless paths append ".007".
std::string chunk_path(const std::string& out_path, std::size_t index) {
  char tag[8];
  std::snprintf(tag, sizeof(tag), "%03zu", index);
  const std::size_t dot = out_path.rfind('.');
  const std::size_t slash = out_path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return out_path + "." + tag;
  }
  return out_path.substr(0, dot) + "." + tag + out_path.substr(dot);
}

int run_convert(int argc, const char* const* argv, int begin) {
  std::string format;
  std::uint64_t ingest_threads = 0;
  std::optional<double> chunk_seconds;
  std::vector<std::string> positionals;

  cli::FlagSet flags("prism convert");
  flags.flag("--format", "csv|lft",
             "output format (default: by <out> extension, .lft -> lft)",
             &format);
  flags.flag("--ingest-threads", "N", "CSV decode threads (0 = hardware)",
             &ingest_threads);
  flags.flag("--chunk-seconds", "S",
             "split the output into S-second time-sliced chunk files "
             "(<out base>.NNN.<ext>) for streaming at prismd",
             &chunk_seconds);
  flags.positionals("<in> <out>", 2, 2, &positionals);

  if (const int rc = finish_parse(flags, flags.parse(argc, argv, begin));
      rc >= 0) {
    return rc;
  }
  const std::string& in_path = positionals[0];
  const std::string& out_path = positionals[1];
  if (format.empty()) {
    format = out_path.ends_with(".lft") ? "lft" : "csv";
  }
  if (format != "csv" && format != "lft") {
    std::cerr << "prism convert: unknown format " << format
              << " (want csv or lft)\n";
    return 2;
  }
  if (chunk_seconds && *chunk_seconds <= 0) {
    std::cerr << "prism convert: --chunk-seconds must be positive\n";
    return 2;
  }

  std::string in_format;
  std::optional<FlowTrace> trace =
      load_trace(in_path, ingest_threads, in_format);
  if (!trace) return 1;

  const auto write_one = [&](const std::string& path, const FlowTrace& t) {
    if (format == "lft") {
      write_lft_file(path, t);
    } else {
      write_csv_file(path, t);
    }
  };

  try {
    if (chunk_seconds) {
      // Time-sliced chunks need time order; a chunked file set is meant to
      // be replayed window by window, so the sort is part of the contract.
      trace->sort();
      const TimeWindow span = trace->span();
      const DurationNs chunk_ns = from_seconds(*chunk_seconds);
      std::size_t chunks = 0;
      std::size_t rows = 0;
      for (TimeNs begin = span.begin; begin < span.end; begin += chunk_ns) {
        const FlowTrace slice = trace->window({begin, begin + chunk_ns});
        if (slice.empty()) continue;
        write_one(chunk_path(out_path, chunks), slice);
        ++chunks;
        rows += slice.size();
      }
      std::cout << "converted " << rows << " flows: " << in_path << " ("
                << in_format << ") -> " << chunks << " " << format
                << " chunks of " << *chunk_seconds << "s ("
                << chunk_path(out_path, 0) << " ...)\n";
      return 0;
    }
    write_one(out_path, *trace);
  } catch (const std::exception& e) {
    std::cerr << "prism convert: " << e.what() << '\n';
    return 1;
  }

  std::error_code ec;
  const auto in_bytes = std::filesystem::file_size(in_path, ec);
  const auto out_bytes = std::filesystem::file_size(out_path, ec);
  std::cout << "converted " << trace->size() << " flows: " << in_path << " ("
            << in_bytes << " B, " << in_format << ") -> " << out_path << " ("
            << out_bytes << " B, " << format << ", "
            << (in_bytes ? static_cast<double>(out_bytes) /
                               static_cast<double>(in_bytes)
                         : 0.0)
            << "x); sorted=" << (trace->is_sorted() ? "yes" : "no") << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string_view command = argv[1];
  if (command == "analyze") return run_analyze(argc, argv, 2);
  if (command == "monitor") return run_monitor_cmd(argc, argv, 2);
  if (command == "convert") return run_convert(argc, argv, 2);
  if (command == "serve") return serve::run_main(argc, argv, 2);
  if (command == "help" || command == "--help" || command == "-h") {
    usage();
    return 0;
  }
  // Deprecated bare form: `prism <trace> [options]`. Everything after
  // argv[0] goes through the analyze parser, so old flag spellings (and
  // unknown-option rejection) behave exactly like `prism analyze`.
  std::cerr << "prism: note: bare `prism <trace>` is deprecated; use `prism "
               "analyze <trace>`\n";
  return run_analyze(argc, argv, 1);
}
