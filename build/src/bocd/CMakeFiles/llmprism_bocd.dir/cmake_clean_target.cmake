file(REMOVE_RECURSE
  "libllmprism_bocd.a"
)
