#include "llmprism/common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace llmprism::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double mean_abs_deviation(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += std::abs(x - m);
  return acc / static_cast<double>(xs.size());
}

double median_abs_deviation(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = median(xs);
  std::vector<double> deviations;
  deviations.reserve(xs.size());
  for (double x : xs) deviations.push_back(std::abs(x - m));
  return median(deviations);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - std::floor(idx);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::int64_t mode(std::span<const std::int64_t> xs) {
  if (xs.empty()) return 0;
  std::unordered_map<std::int64_t, std::size_t> counts;
  counts.reserve(xs.size());
  for (std::int64_t x : xs) ++counts[x];
  std::int64_t best = xs.front();
  std::size_t best_count = 0;
  for (const auto& [value, count] : counts) {
    if (count > best_count || (count == best_count && value < best)) {
      best = value;
      best_count = count;
    }
  }
  return best;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace llmprism::stats
