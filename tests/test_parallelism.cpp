// Unit tests for parallelism configuration, rank mapping, groups, placement
// and ring channels.
#include "llmprism/parallelism/placement.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace llmprism {
namespace {

ParallelismConfig par(std::uint32_t tp, std::uint32_t dp, std::uint32_t pp,
                      RankOrder order = RankOrder::kTpDpPp) {
  ParallelismConfig c;
  c.tp = tp;
  c.dp = dp;
  c.pp = pp;
  c.order = order;
  return c;
}

TEST(ParallelismConfigTest, ValidatesAxes) {
  EXPECT_THROW(RankMap(par(0, 1, 1)), std::invalid_argument);
  EXPECT_THROW(RankMap(par(1, 0, 1)), std::invalid_argument);
  EXPECT_THROW(RankMap(par(1, 1, 0)), std::invalid_argument);
  ParallelismConfig c = par(1, 1, 1);
  c.micro_batches = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(RankMapTest, WorldSize) {
  EXPECT_EQ(RankMap(par(2, 3, 4)).world_size(), 24u);
}

TEST(RankMapTest, CoordRoundTrip) {
  for (const RankOrder order : {RankOrder::kTpDpPp, RankOrder::kTpPpDp}) {
    const RankMap rm(par(2, 3, 4, order));
    for (std::uint32_t r = 0; r < rm.world_size(); ++r) {
      const RankCoord c = rm.coord_of(RankId(r));
      EXPECT_EQ(rm.rank_of(c), RankId(r));
    }
  }
}

TEST(RankMapTest, MegatronOrderTpFastest) {
  const RankMap rm(par(2, 2, 2, RankOrder::kTpDpPp));
  // rank = pp*(dp*tp) + dp*tp + tp
  EXPECT_EQ(rm.coord_of(RankId(0)), (RankCoord{0, 0, 0}));
  EXPECT_EQ(rm.coord_of(RankId(1)), (RankCoord{1, 0, 0}));
  EXPECT_EQ(rm.coord_of(RankId(2)), (RankCoord{0, 1, 0}));
  EXPECT_EQ(rm.coord_of(RankId(4)), (RankCoord{0, 0, 1}));
}

TEST(RankMapTest, TpPpDpOrder) {
  const RankMap rm(par(2, 2, 2, RankOrder::kTpPpDp));
  EXPECT_EQ(rm.coord_of(RankId(1)), (RankCoord{1, 0, 0}));
  EXPECT_EQ(rm.coord_of(RankId(2)), (RankCoord{0, 0, 1}));  // pp second
  EXPECT_EQ(rm.coord_of(RankId(4)), (RankCoord{0, 1, 0}));  // dp outermost
}

TEST(RankMapTest, OutOfRangeThrows) {
  const RankMap rm(par(2, 2, 2));
  EXPECT_THROW(rm.coord_of(RankId(8)), std::out_of_range);
  EXPECT_THROW(rm.rank_of({2, 0, 0}), std::out_of_range);
  EXPECT_THROW(rm.coord_of(RankId()), std::out_of_range);
}

TEST(RankMapTest, GroupsPartitionTheWorld) {
  const RankMap rm(par(2, 4, 3));
  // Every rank appears in exactly one DP group and one PP group.
  for (const auto groups : {rm.all_dp_groups(), rm.all_pp_groups()}) {
    std::set<RankId> seen;
    for (const auto& g : groups) {
      for (const RankId r : g) {
        EXPECT_TRUE(seen.insert(r).second) << "rank in two groups";
      }
    }
    EXPECT_EQ(seen.size(), rm.world_size());
  }
  EXPECT_EQ(rm.all_dp_groups().size(), 6u);  // tp*pp
  EXPECT_EQ(rm.all_pp_groups().size(), 8u);  // tp*dp
}

TEST(RankMapTest, GroupMembersShareTheRightCoords) {
  const RankMap rm(par(2, 4, 3));
  const auto dp_group = rm.dp_group(1, 2);
  ASSERT_EQ(dp_group.size(), 4u);
  for (const RankId r : dp_group) {
    const RankCoord c = rm.coord_of(r);
    EXPECT_EQ(c.tp_idx, 1u);
    EXPECT_EQ(c.pp_idx, 2u);
  }
  const auto pp_group = rm.pp_group(0, 3);
  ASSERT_EQ(pp_group.size(), 3u);
  for (std::uint32_t s = 0; s < pp_group.size(); ++s) {
    EXPECT_EQ(rm.coord_of(pp_group[s]).pp_idx, s);  // stage order
  }
  const auto tp_group = rm.tp_group(2, 1);
  ASSERT_EQ(tp_group.size(), 2u);
  // Megatron order: TP group ranks are consecutive.
  EXPECT_EQ(tp_group[1].value(), tp_group[0].value() + 1);
}

// ---------------------------------------------------------------------------
// Placement

ClusterTopology topo8() {
  return ClusterTopology::build({.num_machines = 8, .gpus_per_machine = 8,
                                 .machines_per_leaf = 4, .num_spines = 2});
}

std::vector<MachineId> machines(std::uint32_t from, std::uint32_t n) {
  std::vector<MachineId> out;
  for (std::uint32_t i = 0; i < n; ++i) out.emplace_back(from + i);
  return out;
}

TEST(PlacementTest, MapsRanksOntoMachinesInOrder) {
  const auto t = topo8();
  const RankMap rm(par(8, 2, 2));  // 32 ranks
  const JobPlacement p(rm, machines(2, 4), t);
  EXPECT_EQ(p.gpu_of(RankId(0)), GpuId(16));   // machine 2, slot 0
  EXPECT_EQ(p.gpu_of(RankId(8)), GpuId(24));   // machine 3
  EXPECT_EQ(p.gpu_of(RankId(31)), GpuId(47));  // machine 5, slot 7
  EXPECT_EQ(p.rank_of(GpuId(16)), RankId(0));
  EXPECT_FALSE(p.rank_of(GpuId(0)).valid());   // not in the job
  EXPECT_EQ(p.all_gpus().size(), 32u);
}

TEST(PlacementTest, RejectsWrongCapacity) {
  const auto t = topo8();
  const RankMap rm(par(8, 2, 2));  // needs 4 machines
  EXPECT_THROW(JobPlacement(rm, machines(0, 3), t), std::invalid_argument);
  EXPECT_THROW(JobPlacement(rm, machines(0, 5), t), std::invalid_argument);
}

TEST(PlacementTest, RejectsDuplicateMachines) {
  const auto t = topo8();
  const RankMap rm(par(8, 2, 1));  // 2 machines
  EXPECT_THROW(JobPlacement(rm, {MachineId(0), MachineId(0)}, t),
               std::invalid_argument);
}

TEST(PlacementTest, TpIntraNodeInvariantEnforced) {
  const auto t = topo8();
  // tp=8 with kTpPpDp and pp=2: tp groups still consecutive -> fine.
  // But tp=16 > gpus_per_machine must throw.
  const RankMap rm(par(16, 1, 1));
  EXPECT_THROW(JobPlacement(rm, machines(0, 2), t), std::invalid_argument);
  // ...unless the check is disabled.
  EXPECT_NO_THROW(JobPlacement(rm, machines(0, 2), t, false));
}

TEST(PlacementTest, TpGroupsLandOnOneMachine) {
  const auto t = topo8();
  for (const std::uint32_t tp : {1u, 2u, 4u, 8u}) {
    const RankMap rm(par(tp, 16 / tp, 2));  // 32 ranks
    const JobPlacement p(rm, machines(0, 4), t);
    for (std::uint32_t d = 0; d < 16 / tp; ++d) {
      for (std::uint32_t s = 0; s < 2; ++s) {
        const auto group = rm.tp_group(d, s);
        const MachineId m = t.machine_of(p.gpu_of(group[0]));
        for (const RankId r : group) {
          EXPECT_EQ(t.machine_of(p.gpu_of(r)), m);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Ring channels

std::vector<RankId> ranks(std::uint32_t n) {
  std::vector<RankId> out;
  for (std::uint32_t i = 0; i < n; ++i) out.emplace_back(i * 10);  // sparse ids
  return out;
}

TEST(RingEdgesTest, TrivialGroups) {
  EXPECT_TRUE(ring_edges(ranks(0), 0).empty());
  EXPECT_TRUE(ring_edges(ranks(1), 0).empty());
  const auto e2 = ring_edges(ranks(2), 0);
  ASSERT_EQ(e2.size(), 1u);
  const auto e2c1 = ring_edges(ranks(2), 1);
  EXPECT_EQ(e2, e2c1);  // only one possible edge
}

TEST(RingEdgesTest, Channel0IsTheNaturalRing) {
  const auto edges = ring_edges(ranks(5), 0);
  ASSERT_EQ(edges.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(edges[i].first, RankId(static_cast<std::uint32_t>(i * 10)));
    EXPECT_EQ(edges[i].second,
              RankId(static_cast<std::uint32_t>(((i + 1) % 5) * 10)));
  }
}

TEST(RingEdgesTest, RingIsAHamiltonianCycle) {
  for (const std::uint32_t n : {3u, 4u, 5u, 8u, 16u}) {
    for (const std::uint32_t channel : {0u, 1u}) {
      const auto edges = ring_edges(ranks(n), channel);
      ASSERT_EQ(edges.size(), n);
      // every node has out-degree 1 and in-degree 1
      std::set<RankId> outs, ins;
      for (const auto& [a, b] : edges) {
        EXPECT_TRUE(outs.insert(a).second);
        EXPECT_TRUE(ins.insert(b).second);
        EXPECT_NE(a, b);
      }
      EXPECT_EQ(outs.size(), n);
      EXPECT_EQ(ins.size(), n);
    }
  }
}

TEST(RingEdgesTest, ChannelsUseDifferentStrides) {
  const auto c0 = ring_edges(ranks(8), 0);
  const auto c1 = ring_edges(ranks(8), 1);
  EXPECT_NE(c0, c1);
  // n=8: coprime strides 1 and 3 -> undirected edge sets are disjoint
  std::set<GpuPair> s0, s1;
  for (const auto& [a, b] : c0) {
    s0.insert(GpuPair(GpuId(a.value()), GpuId(b.value())));
  }
  for (const auto& [a, b] : c1) {
    s1.insert(GpuPair(GpuId(a.value()), GpuId(b.value())));
  }
  for (const auto& e : s1) EXPECT_FALSE(s0.count(e));
}

}  // namespace
}  // namespace llmprism
