#include "llmprism/core/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "llmprism/common/time.hpp"

namespace llmprism {

namespace {

constexpr double kEps = 1e-12;
/// Self-time baselines below this (seconds) are floored before dividing:
/// a rank that normally shows no compute before its sends cannot yield a
/// meaningful *relative* excess, and an unbounded ratio would let noise
/// outrank a genuine straggler.
constexpr double kMinBaselineSeconds = 1e-4;
constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  const double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

/// Sort key that puts an incident's origin in a stable total order.
int kind_order(CulpritKind k) { return static_cast<int>(k); }

std::uint64_t origin_id(const Culprit& c) {
  switch (c.kind) {
    case CulpritKind::kRank: return c.gpu.value();
    case CulpritKind::kDpGroup: return c.dp_group_index;
    case CulpritKind::kSwitch: return c.switch_id.value();
  }
  return 0;
}

bool victim_less(const Victim& a, const Victim& b) {
  return std::tuple(a.job.value(), a.step_index, static_cast<int>(a.kind),
                    a.dp_group_index, a.gpu.value()) <
         std::tuple(b.job.value(), b.step_index, static_cast<int>(b.kind),
                    b.dp_group_index, b.gpu.value());
}

bool incident_less(const AttributedIncident& a, const AttributedIncident& b) {
  return std::tuple(a.job.value(), a.step_begin, a.step_end,
                    kind_order(a.culprits.front().kind),
                    origin_id(a.culprits.front())) <
         std::tuple(b.job.value(), b.step_begin, b.step_end,
                    kind_order(b.culprits.front().kind),
                    origin_id(b.culprits.front()));
}

/// The recovered dependency graph of one job: vertices are the job's GPUs,
/// edges every classified communication pair (PP pipeline adjacency + DP
/// ring membership). Blame travels along these edges, so a victim's "hops"
/// is its BFS distance from the origin vertex set.
struct DependencyGraph {
  std::vector<GpuId> gpus;  ///< ascending
  std::unordered_map<GpuId, std::size_t> index;
  std::vector<std::vector<std::size_t>> adj;

  explicit DependencyGraph(const JobAttributionInput& job) {
    gpus.reserve(job.timelines.size());
    for (const GpuTimeline& t : job.timelines) gpus.push_back(t.gpu);
    std::sort(gpus.begin(), gpus.end());
    gpus.erase(std::unique(gpus.begin(), gpus.end()), gpus.end());
    index.reserve(gpus.size());
    for (std::size_t i = 0; i < gpus.size(); ++i) index.emplace(gpus[i], i);
    adj.resize(gpus.size());
    if (job.comm_types == nullptr) return;
    for (const PairClassification& p : job.comm_types->pairs) {
      const auto a = index.find(p.pair.first);
      const auto b = index.find(p.pair.second);
      if (a == index.end() || b == index.end()) continue;
      adj[a->second].push_back(b->second);
      adj[b->second].push_back(a->second);
    }
  }

  /// BFS distance of every vertex from the origin set (kUnreachable when
  /// no path exists in the recovered graph).
  [[nodiscard]] std::vector<std::size_t> distances(
      std::span<const GpuId> origins) const {
    std::vector<std::size_t> dist(gpus.size(), kUnreachable);
    std::deque<std::size_t> frontier;
    for (const GpuId g : origins) {
      const auto it = index.find(g);
      if (it == index.end() || dist[it->second] == 0) continue;
      dist[it->second] = 0;
      frontier.push_back(it->second);
    }
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop_front();
      for (const std::size_t v : adj[u]) {
        if (dist[v] != kUnreachable) continue;
        dist[v] = dist[u] + 1;
        frontier.push_back(v);
      }
    }
    return dist;
  }

  [[nodiscard]] std::size_t hops_of(const std::vector<std::size_t>& dist,
                                    GpuId g) const {
    const auto it = index.find(g);
    if (it == index.end()) return kUnreachable;
    return dist[it->second];
  }
};

/// One group's contiguous run of cross-group alerts.
struct GroupCluster {
  std::size_t group_index = 0;
  std::size_t step_begin = 0;
  std::size_t step_end = 0;
  std::vector<const GroupAlert*> alerts;  ///< by ascending step
  SwitchId explaining_switch;             ///< invalid when the ring itself
                                          ///< is the deepest explanation
};

/// Victims and evidence accumulating under one alerted switch across jobs.
struct SwitchAccumulator {
  std::vector<Victim> victims;
  IncidentEvidence evidence;
};

std::size_t victim_hops(std::size_t dist, std::size_t extra) {
  if (dist == kUnreachable) return 0;
  return dist + extra;
}

}  // namespace

Attributor::Attributor(AttributionConfig config) : config_(config) {}

std::vector<double> Attributor::step_self_times(const GpuTimeline& t) {
  std::vector<double> out(t.steps.size(), 0.0);
  if (t.steps.empty()) return out;
  std::size_t s = 0;
  for (std::size_t e = 0; e < t.events.size(); ++e) {
    const TimelineEvent& ev = t.events[e];
    if (ev.kind != TimelineEventKind::kPpSend) continue;
    while (s < t.steps.size() && ev.start >= t.steps[s].end) ++s;
    if (s >= t.steps.size()) break;
    if (e == 0 || t.events[e - 1].kind != TimelineEventKind::kCompute) {
      continue;
    }
    out[s] += to_seconds(t.events[e - 1].duration());
  }
  return out;
}

std::vector<std::vector<SwitchId>> Attributor::group_switch_sets(
    const FlowTrace& job_trace,
    const std::vector<std::vector<GpuId>>& dp_components) {
  std::unordered_map<GpuId, std::size_t> comp_of;
  for (std::size_t c = 0; c < dp_components.size(); ++c) {
    for (const GpuId g : dp_components[c]) comp_of.emplace(g, c);
  }
  std::vector<std::vector<SwitchId>> sets(dp_components.size());
  for (const FlowRecord& f : job_trace) {
    const auto a = comp_of.find(f.src);
    const auto b = comp_of.find(f.dst);
    // Same recovered component on both ends <=> a DP ring flow (PP edges
    // connect distinct pipeline stages, hence distinct components).
    if (a == comp_of.end() || b == comp_of.end() || a->second != b->second) {
      continue;
    }
    for (const SwitchId sw : f.switches) sets[a->second].push_back(sw);
  }
  for (std::vector<SwitchId>& s : sets) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }
  return sets;
}

std::vector<std::vector<SwitchId>> Attributor::group_switch_sets(
    const FlowView& job_flows,
    const std::vector<std::vector<GpuId>>& dp_components) {
  std::unordered_map<GpuId, std::size_t> comp_of;
  for (std::size_t c = 0; c < dp_components.size(); ++c) {
    for (const GpuId g : dp_components[c]) comp_of.emplace(g, c);
  }
  std::vector<std::vector<SwitchId>> sets(dp_components.size());
  for (std::size_t i = 0; i < job_flows.size(); ++i) {
    const auto a = comp_of.find(GpuId(job_flows.src[i]));
    const auto b = comp_of.find(GpuId(job_flows.dst[i]));
    // Same recovered component on both ends <=> a DP ring flow (PP edges
    // connect distinct pipeline stages, hence distinct components).
    if (a == comp_of.end() || b == comp_of.end() || a->second != b->second) {
      continue;
    }
    for (const std::uint32_t sw : job_flows.switches(i)) {
      sets[a->second].push_back(SwitchId(sw));
    }
  }
  for (std::vector<SwitchId>& s : sets) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }
  return sets;
}

AttributionResult Attributor::attribute(
    std::span<const JobAttributionInput> jobs,
    std::span<const SwitchBandwidthAlert> switch_bandwidth_alerts,
    std::span<const SwitchConcurrencyAlert> switch_concurrency_alerts) const {
  AttributionResult out;

  // Index the cluster-level switch alerts once; every per-job group
  // cluster probes this to see whether a deeper (fabric) explanation
  // exists for its slowdown.
  std::unordered_map<SwitchId, const SwitchBandwidthAlert*> bw_by_switch;
  for (const SwitchBandwidthAlert& a : switch_bandwidth_alerts) {
    bw_by_switch.emplace(a.switch_id, &a);
  }
  std::unordered_map<SwitchId, SwitchAccumulator> switch_acc;

  std::vector<AttributedIncident> job_incidents;

  for (const JobAttributionInput& job : jobs) {
    const DependencyGraph graph(job);
    std::vector<std::vector<SwitchId>> group_switches;
    if (job.trace != nullptr && job.comm_types != nullptr) {
      group_switches =
          group_switch_sets(job.trace->view(), job.comm_types->dp_components);
    }

    // --- 1. cluster the cross-group alerts per ring ------------------
    std::vector<const GroupAlert*> group_alerts;
    group_alerts.reserve(job.group_alerts.size());
    for (const GroupAlert& a : job.group_alerts) group_alerts.push_back(&a);
    std::sort(group_alerts.begin(), group_alerts.end(),
              [](const GroupAlert* a, const GroupAlert* b) {
                return std::tuple(a->group_index, a->step_index) <
                       std::tuple(b->group_index, b->step_index);
              });
    std::vector<GroupCluster> clusters;
    for (const GroupAlert* a : group_alerts) {
      if (!clusters.empty() &&
          clusters.back().group_index == a->group_index &&
          a->step_index <=
              clusters.back().step_end + config_.merge_step_gap) {
        clusters.back().step_end = a->step_index;
        clusters.back().alerts.push_back(a);
        continue;
      }
      GroupCluster c;
      c.group_index = a->group_index;
      c.step_begin = a->step_index;
      c.step_end = a->step_index;
      c.alerts.push_back(a);
      clusters.push_back(std::move(c));
    }
    for (GroupCluster& c : clusters) {
      // Deepest explanation wins: a bandwidth-alerted switch on the
      // ring's own DP paths outranks blaming the ring. Pick the most
      // degraded such switch (ties to the lower id).
      double best_depth = -1.0;
      if (c.group_index < group_switches.size()) {
        for (const SwitchId sw : group_switches[c.group_index]) {
          const auto it = bw_by_switch.find(sw);
          if (it == bw_by_switch.end()) continue;
          const SwitchBandwidthAlert& a = *it->second;
          const double depth = (a.mean_gbps - a.bandwidth_gbps) /
                               std::max(a.mean_gbps, kEps);
          if (depth > best_depth) {
            best_depth = depth;
            c.explaining_switch = sw;
          }
        }
      }
    }

    // --- 2. claim step alerts behind each group cluster --------------
    // Synchronous training stalls EVERY rank behind a slow collective:
    // members see the long DP burst in the same step, non-members stall
    // one barrier later, so the claim window extends merge_step_gap past
    // the cluster's last alerted step.
    enum class StepState : std::uint8_t { kUnclaimed, kExplained, kOrphaned };
    std::vector<StepState> step_state(job.step_alerts.size(),
                                      StepState::kUnclaimed);
    for (const GroupCluster& c : clusters) {
      std::vector<GpuId> members;
      if (job.comm_types != nullptr &&
          c.group_index < job.comm_types->dp_components.size()) {
        members = job.comm_types->dp_components[c.group_index];
      }
      std::unordered_set<GpuId> member_set(members.begin(), members.end());
      const std::vector<std::size_t> dist = graph.distances(members);
      const std::size_t claim_end = c.step_end + config_.merge_step_gap;

      const bool via_switch = c.explaining_switch.valid();
      AttributedIncident incident;
      SwitchAccumulator* acc = nullptr;
      if (via_switch) {
        acc = &switch_acc[c.explaining_switch];
        // The ring's own alerts are victims of the fabric: hop 1 from
        // the switch through its flows.
        for (const GroupAlert* a : c.alerts) {
          acc->victims.push_back(Victim{.kind = VictimKind::kGroupAlert,
                                        .job = job.id,
                                        .gpu = GpuId{},
                                        .dp_group_index = a->group_index,
                                        .step_index = a->step_index,
                                        .hops = 1});
        }
        acc->evidence.group_alerts += c.alerts.size();
      } else {
        incident.job = job.id;
        incident.step_begin = c.step_begin;
        incident.step_end = c.step_end;
        // Ring origin: blame depth is how far the worst collective sat
        // above the across-group mean.
        double score = 0.0;
        const GroupAlert* worst = c.alerts.front();
        for (const GroupAlert* a : c.alerts) {
          const double excess =
              a->duration_s / std::max(a->mean_s, kEps) - 1.0;
          if (excess > score) {
            score = excess;
            worst = a;
          }
        }
        incident.culprits.push_back(
            Culprit{.kind = CulpritKind::kDpGroup,
                    .gpu = GpuId{},
                    .dp_group_index = c.group_index,
                    .switch_id = SwitchId{},
                    .score = score});
        incident.confidence =
            clamp01(1.0 - worst->threshold_s / std::max(worst->duration_s,
                                                        kEps));
        incident.evidence.group_alerts = c.alerts.size();
      }

      for (std::size_t i = 0; i < job.step_alerts.size(); ++i) {
        if (step_state[i] != StepState::kUnclaimed) continue;
        const StepAlert& a = job.step_alerts[i];
        if (a.step_index < c.step_begin || a.step_index > claim_end) continue;
        step_state[i] = StepState::kExplained;
        const std::size_t d = graph.hops_of(dist, a.gpu);
        if (via_switch) {
          acc->victims.push_back(Victim{.kind = VictimKind::kStepAlert,
                                        .job = job.id,
                                        .gpu = a.gpu,
                                        .dp_group_index = 0,
                                        .step_index = a.step_index,
                                        .hops = victim_hops(d, 1)});
          acc->evidence.step_alerts += 1;
        } else {
          incident.evidence.step_alerts += 1;
          if (member_set.contains(a.gpu)) continue;  // origin's own alert
          incident.victims.push_back(Victim{.kind = VictimKind::kStepAlert,
                                            .job = job.id,
                                            .gpu = a.gpu,
                                            .dp_group_index = 0,
                                            .step_index = a.step_index,
                                            .hops = victim_hops(d, 0)});
        }
      }
      if (!via_switch) {
        std::sort(incident.victims.begin(), incident.victims.end(),
                  victim_less);
        job_incidents.push_back(std::move(incident));
      }
      out.telemetry.alerts_explained += c.alerts.size();
    }

    // --- 3. trace leftover step-alert ranges to a compute origin ------
    std::vector<std::size_t> flagged_steps;
    for (std::size_t i = 0; i < job.step_alerts.size(); ++i) {
      if (step_state[i] == StepState::kUnclaimed) {
        flagged_steps.push_back(job.step_alerts[i].step_index);
      }
    }
    std::sort(flagged_steps.begin(), flagged_steps.end());
    flagged_steps.erase(
        std::unique(flagged_steps.begin(), flagged_steps.end()),
        flagged_steps.end());

    // Per-rank self-time series, computed once per job.
    std::vector<std::vector<double>> self_times;
    self_times.reserve(job.timelines.size());
    for (const GpuTimeline& t : job.timelines) {
      self_times.push_back(step_self_times(t));
    }

    std::size_t r = 0;
    while (r < flagged_steps.size()) {
      std::size_t r_end = r;
      while (r_end + 1 < flagged_steps.size() &&
             flagged_steps[r_end + 1] <=
                 flagged_steps[r_end] + config_.merge_step_gap) {
        ++r_end;
      }
      const std::size_t step_begin = flagged_steps[r];
      const std::size_t step_end = flagged_steps[r_end];
      r = r_end + 1;

      // Score every rank: mean self time across the flagged steps vs the
      // rank's own median over the rest of the window. The victim of a
      // straggler idles before its pp_recv — its recv->send stretch stays
      // flat — so only the true origin (and its flow-invisible TP
      // siblings) shows a self-time excess.
      struct Candidate {
        GpuId gpu;
        double excess = 0.0;
      };
      std::vector<Candidate> candidates;
      candidates.reserve(job.timelines.size());
      for (std::size_t t = 0; t < job.timelines.size(); ++t) {
        const std::vector<double>& series = self_times[t];
        double flagged_sum = 0.0;
        std::size_t flagged_n = 0;
        std::vector<double> rest;
        rest.reserve(series.size());
        for (std::size_t k = 0; k < series.size(); ++k) {
          if (k >= step_begin && k <= step_end) {
            flagged_sum += series[k];
            ++flagged_n;
          } else {
            rest.push_back(series[k]);
          }
        }
        double excess = 0.0;
        if (flagged_n > 0 && !rest.empty()) {
          const double baseline = median(std::move(rest));
          const double flagged_mean =
              flagged_sum / static_cast<double>(flagged_n);
          excess = (flagged_mean - baseline) /
                   std::max(baseline, kMinBaselineSeconds);
        }
        candidates.push_back(
            Candidate{job.timelines[t].gpu, std::max(excess, 0.0)});
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& a, const Candidate& b) {
                  if (a.excess != b.excess) return a.excess > b.excess;
                  return a.gpu < b.gpu;
                });

      const double top =
          candidates.empty() ? 0.0 : candidates.front().excess;
      if (top < config_.min_compute_excess) {
        // No rank stands out: never guess. The alerts stay visible in
        // the report; they are just not pinned on anyone.
        for (std::size_t i = 0; i < job.step_alerts.size(); ++i) {
          const StepAlert& a = job.step_alerts[i];
          if (step_state[i] == StepState::kUnclaimed &&
              a.step_index >= step_begin && a.step_index <= step_end) {
            step_state[i] = StepState::kOrphaned;
            out.telemetry.alerts_orphaned += 1;
          }
        }
        continue;
      }

      const double join =
          std::max(config_.min_compute_excess,
                   config_.origin_cluster_ratio * top);
      std::vector<GpuId> origin_gpus;
      AttributedIncident incident;
      incident.job = job.id;
      incident.step_begin = step_begin;
      incident.step_end = step_end;
      double best_outside = 0.0;
      for (const Candidate& c : candidates) {
        if (c.excess >= join &&
            incident.culprits.size() < config_.max_culprits) {
          incident.culprits.push_back(Culprit{.kind = CulpritKind::kRank,
                                              .gpu = c.gpu,
                                              .dp_group_index = 0,
                                              .switch_id = SwitchId{},
                                              .score = c.excess});
          origin_gpus.push_back(c.gpu);
        } else {
          best_outside = std::max(best_outside, c.excess);
        }
      }
      incident.confidence = clamp01(1.0 - best_outside / top);

      const std::vector<std::size_t> dist = graph.distances(origin_gpus);
      const std::unordered_set<GpuId> origin_set(origin_gpus.begin(),
                                                 origin_gpus.end());
      for (std::size_t i = 0; i < job.step_alerts.size(); ++i) {
        if (step_state[i] != StepState::kUnclaimed) continue;
        const StepAlert& a = job.step_alerts[i];
        if (a.step_index < step_begin || a.step_index > step_end) continue;
        step_state[i] = StepState::kExplained;
        incident.evidence.step_alerts += 1;
        if (origin_set.contains(a.gpu)) continue;  // origin's own alert
        incident.victims.push_back(
            Victim{.kind = VictimKind::kStepAlert,
                   .job = job.id,
                   .gpu = a.gpu,
                   .dp_group_index = 0,
                   .step_index = a.step_index,
                   .hops = victim_hops(graph.hops_of(dist, a.gpu), 0)});
      }
      std::sort(incident.victims.begin(), incident.victims.end(),
                victim_less);
      job_incidents.push_back(std::move(incident));
    }

    for (const StepState s : step_state) {
      if (s == StepState::kExplained) out.telemetry.alerts_explained += 1;
    }
  }

  // --- 4. cluster-level switch incidents ------------------------------
  // Every bandwidth-alerted switch becomes one incident carrying all the
  // group/step victims the per-job pass attached to it; concurrency
  // alerts on the same switch fold in as extra evidence. Concurrency-only
  // switches get their own incident.
  std::vector<AttributedIncident> switch_incidents;
  std::unordered_set<SwitchId> bw_alerted;
  for (const SwitchBandwidthAlert& a : switch_bandwidth_alerts) {
    bw_alerted.insert(a.switch_id);
    AttributedIncident incident;
    const double depth =
        (a.mean_gbps - a.bandwidth_gbps) / std::max(a.mean_gbps, kEps);
    incident.culprits.push_back(Culprit{.kind = CulpritKind::kSwitch,
                                        .gpu = GpuId{},
                                        .dp_group_index = 0,
                                        .switch_id = a.switch_id,
                                        .score = depth});
    incident.confidence = clamp01(
        (a.threshold_gbps - a.bandwidth_gbps) /
        std::max(a.threshold_gbps, kEps));
    incident.evidence.switch_bandwidth_alerts = 1;
    out.telemetry.alerts_explained += 1;
    for (const SwitchConcurrencyAlert& c : switch_concurrency_alerts) {
      if (c.switch_id != a.switch_id) continue;
      incident.evidence.switch_concurrency_alerts += 1;
      out.telemetry.alerts_explained += 1;
    }
    if (const auto it = switch_acc.find(a.switch_id);
        it != switch_acc.end()) {
      incident.victims = std::move(it->second.victims);
      incident.evidence.step_alerts = it->second.evidence.step_alerts;
      incident.evidence.group_alerts = it->second.evidence.group_alerts;
      std::sort(incident.victims.begin(), incident.victims.end(),
                victim_less);
    }
    switch_incidents.push_back(std::move(incident));
  }
  std::vector<SwitchId> concurrency_only;
  for (const SwitchConcurrencyAlert& c : switch_concurrency_alerts) {
    if (!bw_alerted.contains(c.switch_id)) {
      concurrency_only.push_back(c.switch_id);
    }
  }
  std::sort(concurrency_only.begin(), concurrency_only.end());
  concurrency_only.erase(
      std::unique(concurrency_only.begin(), concurrency_only.end()),
      concurrency_only.end());
  for (const SwitchId sw : concurrency_only) {
    AttributedIncident incident;
    double score = 0.0;
    double confidence = 0.0;
    std::uint64_t n = 0;
    for (const SwitchConcurrencyAlert& c : switch_concurrency_alerts) {
      if (c.switch_id != sw) continue;
      ++n;
      const double over = static_cast<double>(c.concurrent_flows) /
                              std::max<double>(static_cast<double>(c.limit),
                                               1.0) -
                          1.0;
      score = std::max(score, over);
      confidence = std::max(confidence, clamp01(over));
      out.telemetry.alerts_explained += 1;
    }
    incident.culprits.push_back(Culprit{.kind = CulpritKind::kSwitch,
                                        .gpu = GpuId{},
                                        .dp_group_index = 0,
                                        .switch_id = sw,
                                        .score = score});
    incident.confidence = confidence;
    incident.evidence.switch_concurrency_alerts = n;
    switch_incidents.push_back(std::move(incident));
  }
  std::sort(switch_incidents.begin(), switch_incidents.end(),
            [](const AttributedIncident& a, const AttributedIncident& b) {
              return a.culprits.front().switch_id <
                     b.culprits.front().switch_id;
            });

  std::sort(job_incidents.begin(), job_incidents.end(), incident_less);
  out.incidents = std::move(job_incidents);
  out.incidents.insert(out.incidents.end(),
                       std::make_move_iterator(switch_incidents.begin()),
                       std::make_move_iterator(switch_incidents.end()));
  return out;
}

}  // namespace llmprism
