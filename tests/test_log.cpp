// Unit tests for the leveled logger: level gating, name parsing, the
// pluggable sink, and concurrent emission through one sink.
#include "llmprism/common/log.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace llmprism {
namespace {

/// Restores the global logger state on scope exit so tests don't leak
/// their sink/level into each other.
class LogStateGuard {
 public:
  LogStateGuard() : level_(log::get_level()) {}
  ~LogStateGuard() {
    log::set_sink({});
    log::set_level(level_);
  }

 private:
  log::Level level_;
};

/// Sink capturing every emission under its own lock (the logger already
/// serializes calls; the lock lets the test thread read safely afterwards).
class CaptureSink {
 public:
  void operator()(log::Level level, std::string_view message) {
    const std::lock_guard<std::mutex> lock(mu_);
    entries_.emplace_back(level, std::string(message));
  }

  [[nodiscard]] std::vector<std::pair<log::Level, std::string>> entries() {
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_;
  }

 private:
  std::mutex mu_;
  std::vector<std::pair<log::Level, std::string>> entries_;
};

TEST(LogLevelTest, NamesAreExhaustive) {
  EXPECT_EQ(log::level_name(log::Level::kDebug), "DEBUG");
  EXPECT_EQ(log::level_name(log::Level::kInfo), "INFO");
  EXPECT_EQ(log::level_name(log::Level::kWarn), "WARN");
  EXPECT_EQ(log::level_name(log::Level::kError), "ERROR");
  EXPECT_EQ(log::level_name(log::Level::kOff), "OFF");
}

TEST(LogLevelTest, ParseAcceptsBothCasesAndAliases) {
  EXPECT_EQ(log::parse_level("debug"), log::Level::kDebug);
  EXPECT_EQ(log::parse_level("INFO"), log::Level::kInfo);
  EXPECT_EQ(log::parse_level("Warn"), log::Level::kWarn);
  EXPECT_EQ(log::parse_level("warning"), log::Level::kWarn);
  EXPECT_EQ(log::parse_level("error"), log::Level::kError);
  EXPECT_EQ(log::parse_level("off"), log::Level::kOff);
  EXPECT_EQ(log::parse_level("none"), log::Level::kOff);
  EXPECT_FALSE(log::parse_level("verbose").has_value());
  EXPECT_FALSE(log::parse_level("").has_value());
}

TEST(LogLevelTest, RoundTripsThroughName) {
  for (const log::Level level :
       {log::Level::kDebug, log::Level::kInfo, log::Level::kWarn,
        log::Level::kError, log::Level::kOff}) {
    EXPECT_EQ(log::parse_level(log::level_name(level)), level);
  }
}

TEST(LogSinkTest, GatesByLevel) {
  LogStateGuard guard;
  auto sink = std::make_shared<CaptureSink>();
  log::set_sink([sink](log::Level l, std::string_view m) { (*sink)(l, m); });

  log::set_level(log::Level::kWarn);
  log::debug("dropped debug");
  log::info("dropped info");
  log::warn("kept warn");
  log::error("kept error");

  const auto entries = sink->entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, log::Level::kWarn);
  EXPECT_EQ(entries[0].second, "kept warn");
  EXPECT_EQ(entries[1].first, log::Level::kError);
  EXPECT_EQ(entries[1].second, "kept error");
}

TEST(LogSinkTest, OffSilencesEverything) {
  LogStateGuard guard;
  auto sink = std::make_shared<CaptureSink>();
  log::set_sink([sink](log::Level l, std::string_view m) { (*sink)(l, m); });
  log::set_level(log::Level::kOff);
  log::error("should not appear");
  EXPECT_TRUE(sink->entries().empty());
}

TEST(LogSinkTest, StreamsArgumentPieces) {
  LogStateGuard guard;
  auto sink = std::make_shared<CaptureSink>();
  log::set_sink([sink](log::Level l, std::string_view m) { (*sink)(l, m); });
  log::set_level(log::Level::kInfo);
  log::info("recognized ", 3, " jobs in ", 1.5, "s");
  const auto entries = sink->entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].second, "recognized 3 jobs in 1.5s");
}

TEST(LogSinkTest, EmptySinkRestoresDefault) {
  LogStateGuard guard;
  auto sink = std::make_shared<CaptureSink>();
  log::set_sink([sink](log::Level l, std::string_view m) { (*sink)(l, m); });
  log::set_level(log::Level::kInfo);
  log::info("captured");
  log::set_sink({});
  log::info("to stderr, not captured");
  EXPECT_EQ(sink->entries().size(), 1u);
}

TEST(LogSinkTest, ConcurrentEmitDeliversEveryMessage) {
  LogStateGuard guard;
  auto sink = std::make_shared<CaptureSink>();
  log::set_sink([sink](log::Level l, std::string_view m) { (*sink)(l, m); });
  log::set_level(log::Level::kInfo);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        log::info("thread ", t, " message ", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const auto entries = sink->entries();
  EXPECT_EQ(entries.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // Each emission arrived whole (serialized), never interleaved.
  for (const auto& [level, message] : entries) {
    EXPECT_EQ(level, log::Level::kInfo);
    EXPECT_EQ(message.rfind("thread ", 0), 0u) << message;
  }
}

TEST(LogSinkTest, SwapWhileOtherThreadsLog) {
  LogStateGuard guard;
  log::set_level(log::Level::kInfo);
  auto a = std::make_shared<CaptureSink>();
  auto b = std::make_shared<CaptureSink>();

  std::thread logger([] {
    for (int i = 0; i < 500; ++i) log::info("spin ", i);
  });
  log::set_sink([a](log::Level l, std::string_view m) { (*a)(l, m); });
  log::set_sink([b](log::Level l, std::string_view m) { (*b)(l, m); });
  logger.join();
  // No crash/tear; whatever was captured went through a live sink.
  const auto captured_a = a->entries();
  const auto captured_b = b->entries();
  EXPECT_LE(captured_a.size() + captured_b.size(), 500u);
}

}  // namespace
}  // namespace llmprism
