# Empty dependencies file for llmprism_baseline.
# This may be replaced when dependencies are built.
