// Communication-pair roles. Shared vocabulary between the analysis side
// (which infers them from flows) and the simulator (which knows them).
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

namespace llmprism {

/// Role of a cross-machine communication pair within a training job.
enum class CommType : std::uint8_t {
  kPP,  ///< pipeline-parallel point-to-point (activations/gradients)
  kDP,  ///< data-parallel collective (gradient synchronization)
};

[[nodiscard]] constexpr std::string_view to_string(CommType t) {
  return t == CommType::kPP ? "PP" : "DP";
}

inline std::ostream& operator<<(std::ostream& os, CommType t) {
  return os << to_string(t);
}

}  // namespace llmprism
