#include "llmprism/serve/daemon.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "llmprism/common/flags.hpp"
#include "llmprism/common/log.hpp"
#include "llmprism/common/time.hpp"
#include "llmprism/core/render.hpp"
#include "llmprism/core/snapshot.hpp"
#include "llmprism/export/view.hpp"
#include "llmprism/flow/lft.hpp"
#include "llmprism/obs/metrics.hpp"
#include "llmprism/serve/frame.hpp"

#if __has_include(<sys/socket.h>) && __has_include(<sys/un.h>) && \
    __has_include(<poll.h>)
#define LLMPRISM_SERVE_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define LLMPRISM_SERVE_HAVE_SOCKETS 0
#include <csignal>
#endif

namespace llmprism::serve {

namespace {

// ---- serve metrics (process-wide registry, scraped at /metrics) ----

obs::Counter& frames_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_serve_frames_total", "Well-formed ingest frames accepted");
  return c;
}
obs::Counter& frame_errors_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_serve_frame_errors_total",
      "Ingest frames rejected (bad header or corrupt LFT payload)");
  return c;
}
obs::Counter& flows_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_serve_flows_total", "Flows handed to shard queues");
  return c;
}
obs::Counter& chunk_bytes_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_serve_chunk_bytes_total", "LFT chunk payload bytes accepted");
  return c;
}
obs::Counter& backpressure_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_serve_backpressure_waits_total",
      "Producer blocks on a full shard ingest queue");
  return c;
}
obs::Counter& http_requests_counter() {
  static obs::Counter& c = obs::default_registry().counter(
      "llmprism_serve_http_requests_total", "HTTP query-plane requests");
  return c;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::default_registry().gauge(
      "llmprism_serve_queue_depth",
      "Flow chunks currently queued across all shards");
  return g;
}

/// Touch every serve metric so /metrics exposes the full set at zero from
/// the first scrape (lazily-registered counters would otherwise only
/// appear once their event first happened).
void register_serve_metrics() {
  frames_counter();
  frame_errors_counter();
  flows_counter();
  chunk_bytes_counter();
  backpressure_counter();
  http_requests_counter();
  queue_depth_gauge();
}

/// One parsed-and-validated flow chunk on its way to a shard worker.
struct Chunk {
  std::uint64_t stream_id = 0;
  FlowTrace trace;
};

/// The shard ingest queue: a BoundedQueue (mutex or lock-free ring, per
/// ServeConfig::queue_impl — see serve/queue.hpp) plus the daemon's
/// telemetry: backpressure waits, and the cross-shard depth gauge.
class ChunkQueue {
 public:
  ChunkQueue(QueueImpl impl, std::size_t capacity)
      : queue_(make_queue<Chunk>(impl, capacity)) {}

  /// Blocks while full (counted once per blocking push). Returns false
  /// when the queue was closed (shutdown) — the chunk is dropped.
  bool push(Chunk chunk, std::atomic<std::uint64_t>& wait_counter) {
    const PushOutcome outcome = queue_->push(std::move(chunk));
    if (outcome.blocked) {
      wait_counter.fetch_add(1, std::memory_order_relaxed);
      backpressure_counter().inc();
    }
    if (outcome.accepted) {
      queue_depth_gauge().set(static_cast<double>(
          total_queued_.fetch_add(1, std::memory_order_relaxed) + 1));
    }
    return outcome.accepted;
  }

  /// Blocks until an item arrives or the queue is closed AND drained
  /// (then nullopt — the consumer's exit signal).
  std::optional<Chunk> pop() {
    std::optional<Chunk> chunk = queue_->pop();
    if (chunk) {
      queue_depth_gauge().set(static_cast<double>(
          total_queued_.fetch_sub(1, std::memory_order_relaxed) - 1));
    }
    return chunk;
  }

  void close() { queue_->close(); }

  [[nodiscard]] std::size_t depth() const { return queue_->depth(); }

 private:
  /// Chunks queued across ALL ChunkQueue instances (feeds the gauge).
  static inline std::atomic<std::uint64_t> total_queued_{0};

  std::unique_ptr<BoundedQueue<Chunk>> queue_;
};

/// Decorate every configured path with a per-shard suffix so a multi-shard
/// daemon's shards never write over each other.
std::string shard_path(const std::string& path, std::size_t shard,
                       std::size_t shards) {
  if (path.empty() || shards <= 1) return path;
  return path + ".shard" + std::to_string(shard);
}

ExportConfig shard_exports(const ExportConfig& exports, std::size_t shard,
                           std::size_t shards) {
  ExportConfig out = exports;
  for (std::string* p : {&out.perfetto_out, &out.series_out, &out.journal_out,
                         &out.metrics_out, &out.trace_out}) {
    *p = shard_path(*p, shard, shards);
  }
  return out;
}

#if LLMPRISM_SERVE_HAVE_SOCKETS

// ---- POSIX socket plumbing ----

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("serve: socket() failed");
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    throw std::runtime_error("serve: cannot bind " + path);
  }
  return fd;
}

int listen_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" +
                             std::to_string(port));
  }
  return fd;
}

/// Accept with a poll timeout so the loop can observe the stop flag.
/// Returns -1 on timeout or shutdown.
int accept_poll(int listen_fd, const std::atomic<bool>& stopping) {
  if (stopping.load(std::memory_order_relaxed)) return -1;
  pollfd pfd{listen_fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, 200);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return -1;
  return ::accept(listen_fd, nullptr, nullptr);
}

/// Read exactly n bytes; false on EOF, error, or shutdown (the stop path
/// shuts the fd down, which fails the pending read).
bool read_exact(int fd, void* buf, std::size_t n) {
  auto* out = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t got = ::read(fd, out, n);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return false;
    out += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t put = ::write(fd, p, n);
    if (put < 0 && errno == EINTR) continue;
    if (put <= 0) return false;
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

#endif  // LLMPRISM_SERVE_HAVE_SOCKETS

void append_json_uint(std::string& out, const char* key, std::uint64_t v,
                      bool trailing_comma = true) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
  if (trailing_comma) out += ',';
}

}  // namespace

std::vector<std::string> ServeConfig::validate() const {
  std::vector<std::string> errors = monitor.validate();
  for (std::string& e : exports.validate()) {
    errors.push_back(std::move(e));
  }
  if (shards == 0) errors.push_back("shards must be >= 1");
  if (queue_capacity == 0) errors.push_back("queue_capacity must be >= 1");
  if (ingest_port == 0 && ingest_socket.empty()) {
    errors.push_back("an ingest endpoint is required (socket path or port)");
  }
  if (http_port == 0 && http_socket.empty()) {
    errors.push_back("an HTTP endpoint is required (socket path or port)");
  }
  return errors;
}

// ---------------------------------------------------------------------------
// PrismDaemon

struct PrismDaemon::Impl {
  /// All state one shard worker owns. `mu` serializes the worker's ingest
  /// against HTTP queries; nothing else ever touches the monitor.
  struct Shard {
    Shard(const ClusterTopology& topology, const ServeConfig& config,
          std::size_t index)
        : monitor(topology, config.monitor),
          queue(config.queue_impl, config.queue_capacity),
          snapshot_file(
              shard_path(config.snapshot_path, index, config.shards)) {}

    std::mutex mu;
    OnlineMonitor monitor;
    ChunkQueue queue;
    std::string snapshot_file;
    /// Always-on lifecycle journal backing GET /journal (independent of
    /// any journal_out file sink).
    IncidentJournal journal;
    std::optional<ExportSinks> sinks;
    std::string last_report_json;  ///< latest window, GET /report
    std::uint64_t windows = 0;
    std::thread worker;
  };

  ClusterTopology topology;
  ServeConfig config;

  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};
  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> frame_errors{0};
  std::atomic<std::uint64_t> flows{0};
  std::atomic<std::uint64_t> chunk_bytes{0};
  std::atomic<std::uint64_t> backpressure_waits{0};
  std::atomic<std::uint64_t> http_requests{0};
  std::atomic<std::uint64_t> snapshots_saved{0};
  std::atomic<std::uint64_t> snapshots_restored{0};

  std::vector<std::unique_ptr<Shard>> shards;

  int ingest_fd = -1;
  int http_fd = -1;
  std::thread ingest_accept_thread;
  std::thread http_thread;
  std::mutex conn_mu;
  std::vector<int> conn_fds;
  std::vector<std::thread> conn_threads;

  Impl(const ClusterTopology& topo, ServeConfig cfg)
      : topology(topo), config(std::move(cfg)) {}

  Shard& shard_for(std::uint64_t stream_id) {
    return *shards[stream_id % shards.size()];
  }

  void worker_loop(Shard& shard) {
    while (auto chunk = shard.queue.pop()) {
      const std::lock_guard lock(shard.mu);
      std::vector<MonitorTick> ticks = shard.monitor.ingest(chunk->trace);
      for (MonitorTick& tick : ticks) {
        const WindowExportView view = export_view(tick);
        shard.journal.add_window(view);
        if (shard.sinks) shard.sinks->add_window(view);
        std::ostringstream json;
        write_report_json(json, tick.report);
        shard.last_report_json = std::move(json).str();
        ++shard.windows;
      }
    }
  }

#if LLMPRISM_SERVE_HAVE_SOCKETS
  void ingest_accept_loop() {
    while (!stopping.load(std::memory_order_relaxed)) {
      const int fd = accept_poll(ingest_fd, stopping);
      if (fd < 0) continue;
      const std::lock_guard lock(conn_mu);
      if (stopping.load(std::memory_order_relaxed)) {
        ::close(fd);
        break;
      }
      const std::size_t idx = conn_fds.size();
      conn_fds.push_back(fd);
      conn_threads.emplace_back(
          [this, fd, idx] { ingest_conn_loop(fd, idx); });
    }
  }

  /// One framed-ingest connection: header, payload, reply, repeat. A
  /// corrupt LFT payload fails only that chunk; a corrupt header closes
  /// the connection (framing sync is lost).
  void ingest_conn_loop(int fd, std::size_t conn_index) {
    std::string payload;
    for (;;) {
      std::byte head[kFrameHeaderSize];
      if (!read_exact(fd, head, sizeof(head))) break;
      FrameHeader header;
      try {
        header = decode_frame_header(std::span<const std::byte>(head));
      } catch (const std::exception& e) {
        frame_errors.fetch_add(1, std::memory_order_relaxed);
        frame_errors_counter().inc();
        const std::string reply = encode_frame(FrameType::kError, 0, e.what());
        write_all(fd, reply.data(), reply.size());
        break;
      }
      payload.resize(static_cast<std::size_t>(header.payload_bytes));
      if (!payload.empty() &&
          !read_exact(fd, payload.data(), payload.size())) {
        break;
      }

      std::string reply;
      if (header.type == FrameType::kPing) {
        frames.fetch_add(1, std::memory_order_relaxed);
        frames_counter().inc();
        reply = encode_ack(header.stream_id, AckPayload{});
      } else if (header.type == FrameType::kFlowChunk) {
        try {
          Chunk chunk;
          chunk.stream_id = header.stream_id;
          chunk.trace = read_lft_buffer(
              std::as_bytes(std::span(payload.data(), payload.size())));
          frames.fetch_add(1, std::memory_order_relaxed);
          frames_counter().inc();
          flows.fetch_add(chunk.trace.size(), std::memory_order_relaxed);
          flows_counter().inc(chunk.trace.size());
          chunk_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
          chunk_bytes_counter().inc(payload.size());

          AckPayload ack;
          ack.flows_accepted = chunk.trace.size();
          Shard& shard = shard_for(header.stream_id);
          if (!shard.queue.push(std::move(chunk), backpressure_waits)) {
            break;  // shutting down
          }
          ack.queue_depth = shard.queue.depth();
          ack.backpressure_waits =
              backpressure_waits.load(std::memory_order_relaxed);
          reply = encode_ack(header.stream_id, ack);
        } catch (const std::exception& e) {
          frame_errors.fetch_add(1, std::memory_order_relaxed);
          frame_errors_counter().inc();
          reply = encode_frame(FrameType::kError, header.stream_id, e.what());
        }
      } else {
        frame_errors.fetch_add(1, std::memory_order_relaxed);
        frame_errors_counter().inc();
        reply = encode_frame(FrameType::kError, header.stream_id,
                             "unexpected frame type");
      }
      if (!write_all(fd, reply.data(), reply.size())) break;
    }
    // Hand the fd back under the lock so stop() never shuts down a number
    // the kernel has already recycled for someone else.
    const std::lock_guard lock(conn_mu);
    ::close(fd);
    conn_fds[conn_index] = -1;
  }

  /// Query plane: one short-lived HTTP/1.0 exchange at a time.
  void http_loop() {
    while (!stopping.load(std::memory_order_relaxed)) {
      const int fd = accept_poll(http_fd, stopping);
      if (fd < 0) continue;
      std::string head;
      char buf[2048];
      while (head.size() < 64 * 1024 &&
             head.find("\r\n\r\n") == std::string::npos &&
             head.find('\n') == std::string::npos) {
        pollfd pfd{fd, POLLIN, 0};
        if (::poll(&pfd, 1, 2000) <= 0) break;
        const ssize_t got = ::read(fd, buf, sizeof(buf));
        if (got <= 0) break;
        head.append(buf, static_cast<std::size_t>(got));
      }
      HttpResponse response;
      HttpRequest request;
      if (parse_http_request(head, request)) {
        response = owner->handle_http(request);
      } else {
        response = {400, "text/plain; charset=utf-8", "bad request\n"};
      }
      const std::string wire = format_http_response(response);
      write_all(fd, wire.data(), wire.size());
      ::close(fd);
    }
  }
#endif  // LLMPRISM_SERVE_HAVE_SOCKETS

  PrismDaemon* owner = nullptr;
};

PrismDaemon::PrismDaemon(const ClusterTopology& topology, ServeConfig config) {
  if (const auto errors = config.validate(); !errors.empty()) {
    std::string message = "invalid serve configuration:";
    for (const std::string& e : errors) message += "\n  - " + e;
    throw std::invalid_argument(message);
  }
  impl_ = std::make_unique<Impl>(topology, std::move(config));
  impl_->owner = this;
}

PrismDaemon::~PrismDaemon() {
  if (impl_) stop();
}

void PrismDaemon::start() {
  Impl& d = *impl_;
  if (d.running.load()) return;
  register_serve_metrics();

  for (std::size_t i = 0; i < d.config.shards; ++i) {
    d.shards.push_back(
        std::make_unique<Impl::Shard>(d.topology, d.config, i));
    Impl::Shard& shard = *d.shards.back();
    if (!shard.snapshot_file.empty()) {
      try {
        restore_snapshot_file(shard.snapshot_file, shard.monitor);
        d.snapshots_restored.fetch_add(1, std::memory_order_relaxed);
        log::info("serve: shard ", i, " restored warm state from ",
                  shard.snapshot_file);
      } catch (const std::exception& e) {
        // Missing file = first boot; anything else = corrupt snapshot.
        // Either way the shard starts cold — a daemon that refuses to boot
        // over stale state is worse than one that re-warms.
        log::warn("serve: shard ", i, " starting cold: ", e.what());
      }
    }
    if (!d.config.exports.empty()) {
      shard.sinks.emplace(shard_exports(d.config.exports, i, d.config.shards));
    }
    shard.worker = std::thread([&d, &shard] { d.worker_loop(shard); });
  }

#if LLMPRISM_SERVE_HAVE_SOCKETS
  d.ingest_fd = d.config.ingest_port != 0 ? listen_tcp(d.config.ingest_port)
                                          : listen_unix(d.config.ingest_socket);
  try {
    d.http_fd = d.config.http_port != 0 ? listen_tcp(d.config.http_port)
                                        : listen_unix(d.config.http_socket);
  } catch (...) {
    close_fd(d.ingest_fd);
    throw;
  }
  d.ingest_accept_thread = std::thread([&d] { d.ingest_accept_loop(); });
  d.http_thread = std::thread([&d] { d.http_loop(); });
#else
  throw std::runtime_error(
      "serve: no socket support on this platform (handle_http remains "
      "usable in-process)");
#endif
  d.running.store(true);
}

void PrismDaemon::stop() {
  Impl& d = *impl_;
  if (d.stopping.exchange(true)) return;

#if LLMPRISM_SERVE_HAVE_SOCKETS
  // Listeners first (the accept loops observe `stopping` within 200 ms),
  // then the per-connection readers: shutting an fd down fails its pending
  // read, and closing the queues unblocks any producer stuck in push().
  if (d.ingest_accept_thread.joinable()) d.ingest_accept_thread.join();
  if (d.http_thread.joinable()) d.http_thread.join();
  close_fd(d.ingest_fd);
  close_fd(d.http_fd);
  {
    const std::lock_guard lock(d.conn_mu);
    for (const int fd : d.conn_fds) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (auto& shard : d.shards) shard->queue.close();
  for (std::thread& t : d.conn_threads) {
    if (t.joinable()) t.join();
  }
  if (d.config.ingest_port == 0 && !d.config.ingest_socket.empty()) {
    ::unlink(d.config.ingest_socket.c_str());
  }
  if (d.config.http_port == 0 && !d.config.http_socket.empty()) {
    ::unlink(d.config.http_socket.c_str());
  }
#else
  for (auto& shard : d.shards) shard->queue.close();
#endif

  // Workers drain whatever was queued, then exit on the closed queue.
  for (auto& shard : d.shards) {
    if (shard->worker.joinable()) shard->worker.join();
  }

  // Snapshot WITHOUT flushing: the partial window's reorder buffer rides
  // along in the blob, so a restarted daemon produces byte-identical
  // subsequent reports (flushing here would analyze a truncated window a
  // continuous daemon never sees).
  for (std::size_t i = 0; i < d.shards.size(); ++i) {
    Impl::Shard& shard = *d.shards[i];
    const std::lock_guard lock(shard.mu);
    if (!shard.snapshot_file.empty()) {
      try {
        save_snapshot_file(shard.snapshot_file, shard.monitor);
        d.snapshots_saved.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception& e) {
        log::error("serve: shard ", i, " snapshot failed: ", e.what());
      }
    }
    if (shard.sinks) {
      for (const std::string& e : shard.sinks->write_files()) {
        log::error("serve: ", e);
      }
    }
  }
  d.running.store(false);
}

bool PrismDaemon::running() const { return impl_->running.load(); }

DaemonStats PrismDaemon::stats() const {
  const Impl& d = *impl_;
  DaemonStats s;
  s.frames = d.frames.load(std::memory_order_relaxed);
  s.frame_errors = d.frame_errors.load(std::memory_order_relaxed);
  s.flows = d.flows.load(std::memory_order_relaxed);
  s.chunk_bytes = d.chunk_bytes.load(std::memory_order_relaxed);
  s.backpressure_waits = d.backpressure_waits.load(std::memory_order_relaxed);
  s.http_requests = d.http_requests.load(std::memory_order_relaxed);
  s.snapshots_saved = d.snapshots_saved.load(std::memory_order_relaxed);
  s.snapshots_restored = d.snapshots_restored.load(std::memory_order_relaxed);
  for (const auto& shard : d.shards) {
    const std::lock_guard lock(shard->mu);
    s.windows_completed += shard->windows;
  }
  return s;
}

HttpResponse PrismDaemon::handle_http(const HttpRequest& request) {
  Impl& d = *impl_;
  d.http_requests.fetch_add(1, std::memory_order_relaxed);
  http_requests_counter().inc();

  if (request.method != "GET") {
    return {405, "text/plain; charset=utf-8", "only GET is supported\n"};
  }

  auto parse_shard = [&](std::size_t& out) -> bool {
    const std::string raw = query_param(request.query, "shard");
    if (raw.empty()) {
      out = 0;
      return true;
    }
    try {
      out = std::stoul(raw);
    } catch (...) {
      return false;
    }
    return out < d.shards.size();
  };

  if (request.path == "/healthz") {
    if (!d.running.load()) return {503, "text/plain; charset=utf-8", "starting\n"};
    return {200, "text/plain; charset=utf-8", "ok\n"};
  }

  if (request.path == "/metrics") {
    std::ostringstream out;
    obs::default_registry().write_prometheus(out);
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            std::move(out).str()};
  }

  if (request.path == "/statusz") {
    const DaemonStats s = stats();
    std::string body = "{";
    append_json_uint(body, "shards", d.shards.size());
    append_json_uint(body, "frames", s.frames);
    append_json_uint(body, "frame_errors", s.frame_errors);
    append_json_uint(body, "flows", s.flows);
    append_json_uint(body, "chunk_bytes", s.chunk_bytes);
    append_json_uint(body, "backpressure_waits", s.backpressure_waits);
    append_json_uint(body, "http_requests", s.http_requests);
    append_json_uint(body, "snapshots_saved", s.snapshots_saved);
    append_json_uint(body, "snapshots_restored", s.snapshots_restored);
    append_json_uint(body, "windows_completed", s.windows_completed, false);
    body += "}\n";
    return {200, "application/json", std::move(body)};
  }

  if (request.path == "/jobs") {
    std::string body = "[";
    bool first = true;
    for (std::size_t i = 0; i < d.shards.size(); ++i) {
      Impl::Shard& shard = *d.shards[i];
      const std::lock_guard lock(shard.mu);
      const MonitorStats& stats = shard.monitor.stats();
      std::vector<std::pair<MonitorJobId, std::size_t>> jobs(
          stats.job_windows.begin(), stats.job_windows.end());
      std::sort(jobs.begin(), jobs.end());
      for (const auto& [id, windows] : jobs) {
        if (!first) body += ',';
        first = false;
        body += "{";
        append_json_uint(body, "shard", i);
        append_json_uint(body, "job", id);
        append_json_uint(body, "windows", windows, false);
        body += "}";
      }
    }
    body += "]\n";
    return {200, "application/json", std::move(body)};
  }

  if (request.path == "/report") {
    std::size_t shard_index = 0;
    if (!parse_shard(shard_index)) {
      return {404, "text/plain; charset=utf-8", "no such shard\n"};
    }
    Impl::Shard& shard = *d.shards[shard_index];
    const std::lock_guard lock(shard.mu);
    if (shard.last_report_json.empty()) {
      return {404, "text/plain; charset=utf-8", "no window analyzed yet\n"};
    }
    return {200, "application/json", shard.last_report_json};
  }

  if (request.path == "/journal") {
    std::size_t shard_index = 0;
    if (!parse_shard(shard_index)) {
      return {404, "text/plain; charset=utf-8", "no such shard\n"};
    }
    Impl::Shard& shard = *d.shards[shard_index];
    const std::lock_guard lock(shard.mu);
    std::ostringstream out;
    shard.journal.write_jsonl(out);
    return {200, "application/x-ndjson", std::move(out).str()};
  }

  return {404, "text/plain; charset=utf-8", "not found\n"};
}

// ---------------------------------------------------------------------------
// run_main — the prismd / `prism serve` entry point

namespace {

std::atomic<int> g_stop_signal{0};

void on_stop_signal(int sig) { g_stop_signal.store(sig); }

}  // namespace

int run_main(int argc, const char* const* argv, int begin) {
  TopologyConfig topo{.num_machines = 0, .gpus_per_machine = 8,
                      .machines_per_leaf = 16, .num_spines = 4};
  double window_seconds = 60.0;
  bool no_carry = false;
  std::uint64_t shards = 1;
  std::uint64_t queue_capacity = 64;
  std::string queue_impl = "lockfree";
  ServeConfig config;
  std::string log_level;

  cli::FlagSet flags("prism serve");
  flags.flag("--machines", "N", "machines in the cluster (required)",
             &topo.num_machines);
  flags.flag("--gpus-per-machine", "N", "GPUs per machine (default 8)",
             &topo.gpus_per_machine);
  flags.flag("--machines-per-leaf", "N", "machines per leaf switch",
             &topo.machines_per_leaf);
  flags.flag("--spines", "N", "spine switches", &topo.num_spines);
  flags.flag("--window", "S", "analysis window length in seconds (default 60)",
             &window_seconds);
  flags.flag("--no-carry", "disable the warm cross-window session",
             &no_carry);
  flags.flag("--shards", "N", "shard workers (stream S -> shard S%N)",
             &shards);
  flags.flag("--queue-capacity", "N",
             "chunks buffered per shard before backpressure (default 64)",
             &queue_capacity);
  flags.flag("--queue-impl", "IMPL",
             "shard ingest queue: lockfree (default) or mutex", &queue_impl);
  flags.flag("--ingest-socket", "PATH",
             "Unix socket for LPF-framed flow chunks", &config.ingest_socket);
  flags.flag("--ingest-port", "PORT", "TCP ingest on 127.0.0.1 instead",
             &config.ingest_port);
  flags.flag("--http-socket", "PATH",
             "Unix socket for the HTTP query plane (curl --unix-socket)",
             &config.http_socket);
  flags.flag("--http-port", "PORT", "TCP HTTP on 127.0.0.1 instead",
             &config.http_port);
  flags.flag("--snapshot", "FILE",
             "warm-state snapshot saved on shutdown, restored on boot",
             &config.snapshot_path);
  flags.flag("--perfetto-out", "FILE", "timeline Chrome trace on shutdown",
             &config.exports.perfetto_out);
  flags.flag("--series-out", "FILE", "per-job metrics series on shutdown",
             &config.exports.series_out);
  flags.flag("--journal-out", "FILE", "incident journal JSONL on shutdown",
             &config.exports.journal_out);
  flags.flag("--metrics-out", "FILE", "metrics registry dump on shutdown",
             &config.exports.metrics_out);
  flags.flag("--trace-out", "FILE", "pipeline span trace on shutdown",
             &config.exports.trace_out);
  flags.flag("--log-level", "LEVEL", "debug|info|warn|error|off", &log_level);

  const cli::ParseResult parsed = flags.parse(argc, argv, begin);
  if (parsed.help) {
    std::fputs(flags.usage().c_str(), stdout);
    return 0;
  }
  if (!parsed.ok) {
    for (const std::string& e : parsed.errors) {
      std::fprintf(stderr, "%s: %s\n", flags.program().c_str(), e.c_str());
    }
    std::fprintf(stderr, "run '%s --help' for usage\n",
                 flags.program().c_str());
    return 2;
  }
  if (!log_level.empty()) {
    const auto level = log::parse_level(log_level);
    if (!level) {
      std::fprintf(stderr, "prism serve: unknown log level %s\n",
                   log_level.c_str());
      return 2;
    }
    log::set_level(*level);
  }
  if (topo.num_machines == 0) {
    std::fprintf(stderr,
                 "prism serve: --machines is required (no trace to derive the "
                 "topology from)\n");
    return 2;
  }

  config.shards = static_cast<std::size_t>(shards);
  config.queue_capacity = static_cast<std::size_t>(queue_capacity);
  if (const auto impl = parse_queue_impl(queue_impl)) {
    config.queue_impl = *impl;
  } else {
    std::fprintf(stderr,
                 "prism serve: unknown queue impl %s (lockfree|mutex)\n",
                 queue_impl.c_str());
    return 2;
  }
  config.monitor.window = from_seconds(window_seconds);
  config.monitor.carry_state = !no_carry;

  try {
    const ClusterTopology topology = ClusterTopology::build(topo);
    PrismDaemon daemon(topology, config);

    std::signal(SIGTERM, on_stop_signal);
    std::signal(SIGINT, on_stop_signal);
    daemon.start();
    if (config.ingest_port != 0) {
      std::printf("prismd: ingest on 127.0.0.1:%u\n", config.ingest_port);
    } else {
      std::printf("prismd: ingest on %s\n", config.ingest_socket.c_str());
    }
    if (config.http_port != 0) {
      std::printf("prismd: http on 127.0.0.1:%u\n", config.http_port);
    } else {
      std::printf("prismd: http on %s\n", config.http_socket.c_str());
    }
    std::fflush(stdout);

    while (g_stop_signal.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("prismd: signal %d, draining + snapshotting\n",
                g_stop_signal.load());
    daemon.stop();

    const DaemonStats s = daemon.stats();
    std::printf(
        "prismd: %llu frames (%llu errors), %llu flows, %llu windows, "
        "%llu backpressure waits\n",
        static_cast<unsigned long long>(s.frames),
        static_cast<unsigned long long>(s.frame_errors),
        static_cast<unsigned long long>(s.flows),
        static_cast<unsigned long long>(s.windows_completed),
        static_cast<unsigned long long>(s.backpressure_waits));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "prismd: %s\n", e.what());
    return 1;
  }
}

}  // namespace llmprism::serve
