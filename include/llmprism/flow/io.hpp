// Flow-trace serialization (CSV). The on-disk format mirrors what a
// production collector would export:
//
//   start_ns,src,dst,bytes,duration_ns,switches
//
// where `switches` is a ';'-joined hop list, e.g. "3;17;4".
#pragma once

#include <cstddef>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "llmprism/flow/trace.hpp"

namespace llmprism {

/// Write `trace` as CSV with a header row.
void write_csv(std::ostream& os, const FlowTrace& trace);

/// One rejected CSV row: the 1-based physical line number (blank lines and
/// the header count toward it, so the number matches what an editor shows)
/// and what was wrong with it.
struct ParseError {
  std::size_t line = 0;
  std::string message;
};

/// Outcome of a checked parse: every well-formed row, plus a diagnostic per
/// rejected one. A collector export with a few corrupt lines still yields
/// all its good flows — the caller decides whether errors are fatal.
struct ParseResult {
  FlowTrace trace;
  std::vector<ParseError> errors;
  /// Physical lines consumed (header and blank lines included).
  std::size_t lines_read = 0;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Parse a CSV flow trace without throwing on malformed rows: bad rows are
/// reported in `errors` (1-based line numbers) and skipped. A missing
/// header is itself an error (no rows are parsed without one).
[[nodiscard]] ParseResult read_csv_checked(std::istream& is);

/// Parse a CSV flow trace (header row required). Thin wrapper over
/// read_csv_checked() that throws std::runtime_error naming the first bad
/// line on any malformed input.
[[nodiscard]] FlowTrace read_csv(std::istream& is);

/// Convenience file wrappers; throw std::runtime_error if the file cannot
/// be opened.
void write_csv_file(const std::string& path, const FlowTrace& trace);
[[nodiscard]] FlowTrace read_csv_file(const std::string& path);

}  // namespace llmprism
