#include "llmprism/common/flags.hpp"

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <utility>

namespace llmprism::cli {

namespace {

template <typename Int>
std::string parse_unsigned(std::string_view value, Int* target) {
  Int out{};
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    return "expected a non-negative integer, got '" + std::string(value) + "'";
  }
  *target = out;
  return {};
}

std::string parse_double(std::string_view value, double* target) {
  // strtod over a NUL-terminated copy: libstdc++ lacks FP from_chars on
  // some of the toolchains this builds with.
  const std::string copy(value);
  char* end = nullptr;
  const double out = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    return "expected a number, got '" + copy + "'";
  }
  *target = out;
  return {};
}

}  // namespace

FlagSet::FlagSet(std::string program) : program_(std::move(program)) {}

void FlagSet::flag(std::string name, std::string value_name, std::string help,
                   std::string* target) {
  custom_flag(std::move(name), std::move(value_name), std::move(help), true,
              [target](std::string_view v) {
                *target = std::string(v);
                return std::string{};
              });
}

void FlagSet::flag(std::string name, std::string help, bool* target) {
  custom_flag(std::move(name), "", std::move(help), false,
              [target](std::string_view) {
                *target = true;
                return std::string{};
              });
}

void FlagSet::flag(std::string name, std::string value_name, std::string help,
                   double* target) {
  custom_flag(std::move(name), std::move(value_name), std::move(help), true,
              [target](std::string_view v) { return parse_double(v, target); });
}

void FlagSet::flag(std::string name, std::string value_name, std::string help,
                   std::uint16_t* target) {
  custom_flag(
      std::move(name), std::move(value_name), std::move(help), true,
      [target](std::string_view v) { return parse_unsigned(v, target); });
}

void FlagSet::flag(std::string name, std::string value_name, std::string help,
                   std::uint32_t* target) {
  custom_flag(
      std::move(name), std::move(value_name), std::move(help), true,
      [target](std::string_view v) { return parse_unsigned(v, target); });
}

void FlagSet::flag(std::string name, std::string value_name, std::string help,
                   std::uint64_t* target) {
  custom_flag(
      std::move(name), std::move(value_name), std::move(help), true,
      [target](std::string_view v) { return parse_unsigned(v, target); });
}

void FlagSet::flag(std::string name, std::string value_name, std::string help,
                   std::optional<double>* target) {
  custom_flag(std::move(name), std::move(value_name), std::move(help), true,
              [target](std::string_view v) {
                double out{};
                std::string err = parse_double(v, &out);
                if (err.empty()) *target = out;
                return err;
              });
}

void FlagSet::custom_flag(std::string name, std::string value_name,
                          std::string help, bool takes_value,
                          std::function<std::string(std::string_view)> parse) {
  flags_.push_back(Flag{std::move(name), std::move(value_name),
                        std::move(help), takes_value, std::move(parse)});
}

void FlagSet::alias(std::string old_name, std::string canonical) {
  aliases_.emplace_back(std::move(old_name), std::move(canonical));
}

void FlagSet::positionals(std::string name, std::size_t min, std::size_t max,
                          std::vector<std::string>* target) {
  positional_name_ = std::move(name);
  positional_min_ = min;
  positional_max_ = max;
  positional_target_ = target;
}

FlagSet::Flag* FlagSet::find(std::string_view name) {
  for (Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

ParseResult FlagSet::parse(int argc, const char* const* argv, int begin) {
  ParseResult result;
  std::vector<std::string> positionals;
  bool only_positionals = false;
  for (int i = begin; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (only_positionals || arg.empty() || arg[0] != '-' || arg == "-") {
      positionals.emplace_back(arg);
      continue;
    }
    if (arg == "--") {
      only_positionals = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      result.help = true;
      return result;
    }
    // Split --name=value once, then resolve deprecated aliases.
    std::string_view name = arg;
    std::optional<std::string_view> inline_value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    for (const auto& [old_name, canonical] : aliases_) {
      if (name == old_name) {
        std::cerr << program_ << ": note: " << old_name
                  << " is deprecated; use " << canonical << '\n';
        name = canonical;
        break;
      }
    }
    Flag* flag = find(name);
    if (flag == nullptr) {
      result.errors.push_back("unknown option '" + std::string(arg) +
                              "' (run '" + program_ + " --help' for usage)");
      result.ok = false;
      // Skip a value the unknown flag probably owned? No: stop guessing,
      // but keep scanning so every unknown option is reported at once.
      continue;
    }
    std::string_view value;
    if (flag->takes_value) {
      if (inline_value) {
        value = *inline_value;
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        result.errors.push_back("missing value for " + flag->name + " <" +
                                flag->value_name + ">");
        result.ok = false;
        continue;
      }
    } else if (inline_value) {
      result.errors.push_back(flag->name + " takes no value");
      result.ok = false;
      continue;
    }
    if (std::string err = flag->parse(value); !err.empty()) {
      result.errors.push_back(flag->name + ": " + err);
      result.ok = false;
    }
  }

  if (positionals.size() < positional_min_) {
    result.errors.push_back("missing <" + positional_name_ + "> argument" +
                            (positional_min_ > 1 ? "s" : ""));
    result.ok = false;
  } else if (positionals.size() > positional_max_) {
    result.errors.push_back(
        "unexpected argument '" + positionals[positional_max_] + "'" +
        (positional_max_ == 0 ? " (this command takes no positionals)" : ""));
    result.ok = false;
  }
  if (positional_target_ != nullptr) {
    *positional_target_ = std::move(positionals);
  }
  return result;
}

std::string FlagSet::usage() const {
  std::ostringstream os;
  os << "usage: " << program_;
  if (positional_max_ > 0) {
    os << (positional_min_ > 0 ? " <" : " [<") << positional_name_
       << (positional_min_ > 0 ? ">" : ">]");
    if (positional_max_ > positional_min_ + 1 || positional_max_ > 1) {
      os << "...";
    }
  }
  if (!flags_.empty()) os << " [options]";
  os << "\noptions:\n";
  std::size_t width = 0;
  std::vector<std::string> heads;
  heads.reserve(flags_.size());
  for (const Flag& f : flags_) {
    std::string head = "  " + f.name;
    if (f.takes_value) head += " <" + f.value_name + ">";
    width = std::max(width, head.size());
    heads.push_back(std::move(head));
  }
  for (std::size_t i = 0; i < flags_.size(); ++i) {
    os << heads[i] << std::string(width - heads[i].size() + 2, ' ')
       << flags_[i].help << '\n';
  }
  return os.str();
}

}  // namespace llmprism::cli
