file(REMOVE_RECURSE
  "CMakeFiles/congestion_alert.dir/congestion_alert.cpp.o"
  "CMakeFiles/congestion_alert.dir/congestion_alert.cpp.o.d"
  "congestion_alert"
  "congestion_alert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_alert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
