// ExportConfig — one validated description of every file-output sink,
// consumed uniformly by the CLI subcommands, the prismd daemon, and
// examples/fleet_dashboard.cpp.
//
// Before this struct existed each tool threaded five separate path strings
// (--perfetto-out/--series-out/--journal-out/--metrics-out/--trace-out)
// through ad-hoc plumbing and duplicated the "open file, pick format by
// suffix, write" logic. ExportConfig carries the paths; ExportSinks owns
// the per-window exporters those paths enable, consumes WindowExportViews,
// and writes everything (including the process-wide metrics registry and
// pipeline trace spans) in one call.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "llmprism/export/journal.hpp"
#include "llmprism/export/perfetto.hpp"
#include "llmprism/export/series.hpp"
#include "llmprism/export/view.hpp"

namespace llmprism {

struct ExportConfig {
  /// Reconstructed-timeline Chrome trace JSON (ui.perfetto.dev).
  std::string perfetto_out;
  /// Per-job per-window metrics: OpenMetrics text, or JSONL when the path
  /// ends in ".jsonl".
  std::string series_out;
  /// Incident lifecycle journal (JSONL, open -> update -> resolve).
  std::string journal_out;
  /// Self-telemetry registry dump: Prometheus text, or a JSON snapshot
  /// when the path ends in ".json".
  std::string metrics_out;
  /// Pipeline trace spans as Chrome trace_event JSON. Enabling this turns
  /// the span collector on for the lifetime of the ExportSinks.
  std::string trace_out;

  /// True when any per-window sink (perfetto/series/journal) is requested.
  [[nodiscard]] bool any_window_sink() const {
    return !perfetto_out.empty() || !series_out.empty() ||
           !journal_out.empty();
  }
  /// True when nothing at all is requested.
  [[nodiscard]] bool empty() const {
    return !any_window_sink() && metrics_out.empty() && trace_out.empty();
  }

  /// Descriptive configuration errors (empty = valid). Catches two sinks
  /// aimed at the same path — the second write would clobber the first.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// The export sinks one ExportConfig enables, fed one analyzed window at a
/// time and flushed to their files by write_files(). Each output is a
/// deterministic function of the (window, report, stable-ids) sequence, so
/// repeated runs produce bit-identical files. Constructing with a
/// non-empty trace_out enables the global span collector; write_files()
/// disables it again.
class ExportSinks {
 public:
  explicit ExportSinks(ExportConfig config);

  /// Feed one analyzed window (in time order) to every per-window sink.
  void add_window(const WindowExportView& view);

  /// Finish the journal and write every configured file (per-window sinks,
  /// then metrics registry and span trace). Returns one message per file
  /// that could not be written (empty = all good).
  std::vector<std::string> write_files();

  /// The lifecycle journal (null unless journal_out is configured) — the
  /// daemon serves its current state over HTTP between writes.
  [[nodiscard]] const IncidentJournal* journal() const {
    return journal_ ? &*journal_ : nullptr;
  }

  [[nodiscard]] const ExportConfig& config() const { return config_; }

 private:
  ExportConfig config_;
  std::optional<PerfettoExporter> perfetto_;
  std::optional<JobSeriesCollector> series_;
  std::optional<IncidentJournal> journal_;
};

}  // namespace llmprism
