// Unit tests for the 1F1B pipeline schedule.
#include "llmprism/simulator/pipeline_schedule.hpp"

#include <gtest/gtest.h>

#include <map>

namespace llmprism {
namespace {

PipelineScheduleInput uniform_input(std::uint32_t P, std::uint32_t M,
                                    DurationNs f, DurationNs b,
                                    DurationNs transfer = 0) {
  PipelineScheduleInput in;
  in.num_stages = P;
  in.num_micro_batches = M;
  in.fwd_time.assign(P, std::vector<DurationNs>(M, f));
  in.bwd_time.assign(P, std::vector<DurationNs>(M, b));
  in.transfer_time = transfer;
  return in;
}

TEST(PipelineScheduleTest, RejectsZeroStages) {
  auto in = uniform_input(1, 1, 10, 20);
  in.num_stages = 0;
  EXPECT_THROW(compute_1f1b_schedule(in), std::invalid_argument);
}

TEST(PipelineScheduleTest, RejectsWrongMatrixShape) {
  auto in = uniform_input(2, 3, 10, 20);
  in.fwd_time.pop_back();
  EXPECT_THROW(compute_1f1b_schedule(in), std::invalid_argument);
}

TEST(PipelineScheduleTest, SingleStageIsSerialFwdBwd) {
  // P=1 degenerates to fwd(m), bwd(m) strictly alternating.
  const auto sched = compute_1f1b_schedule(uniform_input(1, 4, 10, 20));
  ASSERT_EQ(sched.ops.size(), 1u);
  const auto& ops = sched.ops[0];
  ASSERT_EQ(ops.size(), 8u);
  TimeNs t = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i].start, t);
    const bool is_fwd = i % 2 == 0;
    EXPECT_EQ(ops[i].kind,
              is_fwd ? PipeOpKind::kForward : PipeOpKind::kBackward);
    EXPECT_EQ(ops[i].micro_batch, i / 2);
    t += is_fwd ? 10 : 20;
  }
  EXPECT_EQ(sched.makespan_end(), 4 * (10 + 20));
}

TEST(PipelineScheduleTest, EveryOpScheduledExactlyOnce) {
  const auto sched = compute_1f1b_schedule(uniform_input(4, 8, 10, 20, 1));
  std::map<std::pair<int, int>, int> fwd_count, bwd_count;
  for (const auto& stage_ops : sched.ops) {
    for (const PipeOp& op : stage_ops) {
      auto& counts = op.kind == PipeOpKind::kForward ? fwd_count : bwd_count;
      ++counts[{static_cast<int>(op.stage),
                static_cast<int>(op.micro_batch)}];
    }
  }
  EXPECT_EQ(fwd_count.size(), 32u);
  EXPECT_EQ(bwd_count.size(), 32u);
  for (const auto& [k, c] : fwd_count) EXPECT_EQ(c, 1);
  for (const auto& [k, c] : bwd_count) EXPECT_EQ(c, 1);
}

TEST(PipelineScheduleTest, RespectsForwardDependencies) {
  const auto sched = compute_1f1b_schedule(uniform_input(4, 6, 10, 20, 3));
  std::map<std::pair<int, int>, TimeNs> fwd_end, bwd_end;
  std::map<std::pair<int, int>, TimeNs> fwd_start, bwd_start;
  for (const auto& stage_ops : sched.ops) {
    for (const PipeOp& op : stage_ops) {
      const auto key = std::make_pair(static_cast<int>(op.stage),
                                      static_cast<int>(op.micro_batch));
      if (op.kind == PipeOpKind::kForward) {
        fwd_end[key] = op.end;
        fwd_start[key] = op.start;
      } else {
        bwd_end[key] = op.end;
        bwd_start[key] = op.start;
      }
    }
  }
  for (int s = 1; s < 4; ++s) {
    for (int m = 0; m < 6; ++m) {
      const auto key = std::make_pair(s, m);
      const auto up = std::make_pair(s - 1, m);
      EXPECT_GE(fwd_start[key], fwd_end[up] + 3)
          << "fwd(" << s << "," << m << ")";
    }
  }
  for (int s = 0; s < 3; ++s) {
    for (int m = 0; m < 6; ++m) {
      const auto key = std::make_pair(s, m);
      const auto down = std::make_pair(s + 1, m);
      EXPECT_GE(bwd_start[key], bwd_end[down] + 3)
          << "bwd(" << s << "," << m << ")";
    }
  }
  // Backward of a micro-batch never precedes its own forward on a stage.
  for (int s = 0; s < 4; ++s) {
    for (int m = 0; m < 6; ++m) {
      const auto key = std::make_pair(s, m);
      EXPECT_GE(bwd_start[key], fwd_end[key]);
    }
  }
}

TEST(PipelineScheduleTest, StageOpsAreSerialized) {
  const auto sched = compute_1f1b_schedule(uniform_input(4, 8, 7, 13, 2));
  for (const auto& stage_ops : sched.ops) {
    for (std::size_t i = 1; i < stage_ops.size(); ++i) {
      EXPECT_GE(stage_ops[i].start, stage_ops[i - 1].end);
    }
  }
}

TEST(PipelineScheduleTest, ClassicMakespanFormula) {
  // With equal f+b across stages and zero transfer, 1F1B completes in
  // (M + P - 1) * (f + b) (textbook non-interleaved 1F1B makespan).
  const DurationNs f = 10, b = 20;
  for (std::uint32_t P : {2u, 4u, 8u}) {
    for (std::uint32_t M : {4u, 8u, 16u}) {
      if (M < P) continue;
      const auto sched = compute_1f1b_schedule(uniform_input(P, M, f, b));
      EXPECT_EQ(sched.makespan_end(),
                static_cast<TimeNs>((M + P - 1) * (f + b)))
          << "P=" << P << " M=" << M;
    }
  }
}

TEST(PipelineScheduleTest, BackwardDoneIsLastBackward) {
  const auto sched = compute_1f1b_schedule(uniform_input(3, 5, 10, 20, 1));
  for (std::uint32_t s = 0; s < 3; ++s) {
    TimeNs latest = 0;
    for (const PipeOp& op : sched.ops[s]) {
      if (op.kind == PipeOpKind::kBackward) latest = std::max(latest, op.end);
    }
    EXPECT_EQ(sched.backward_done(s), latest);
  }
  // Stage 0 finishes backward last (gradients flow upstream).
  EXPECT_GE(sched.backward_done(0), sched.backward_done(2));
}

TEST(PipelineScheduleTest, StartTimeOffsetsEverything) {
  auto in = uniform_input(2, 3, 10, 20, 1);
  const auto base = compute_1f1b_schedule(in);
  in.start_time = 1000;
  const auto shifted = compute_1f1b_schedule(in);
  for (std::size_t s = 0; s < 2; ++s) {
    ASSERT_EQ(base.ops[s].size(), shifted.ops[s].size());
    for (std::size_t i = 0; i < base.ops[s].size(); ++i) {
      EXPECT_EQ(shifted.ops[s][i].start, base.ops[s][i].start + 1000);
      EXPECT_EQ(shifted.ops[s][i].end, base.ops[s][i].end + 1000);
    }
  }
}

TEST(PipelineScheduleTest, FewerMicroBatchesThanStages) {
  // M < P exercises the warmup = M clamp.
  const auto sched = compute_1f1b_schedule(uniform_input(8, 2, 10, 20, 1));
  std::size_t total = 0;
  for (const auto& ops : sched.ops) total += ops.size();
  EXPECT_EQ(total, 2u * 8 * 2);
}

// Parameterized sweep: schedule validity invariants over many shapes.
class ScheduleSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ScheduleSweep, InvariantsHold) {
  const auto [P, M, transfer] = GetParam();
  const auto sched = compute_1f1b_schedule(uniform_input(
      static_cast<std::uint32_t>(P), static_cast<std::uint32_t>(M), 11, 23,
      transfer));
  // per-stage serialization + op count
  std::size_t total = 0;
  for (const auto& ops : sched.ops) {
    total += ops.size();
    for (std::size_t i = 1; i < ops.size(); ++i) {
      ASSERT_GE(ops[i].start, ops[i - 1].end);
    }
    for (const PipeOp& op : ops) {
      ASSERT_GE(op.end, op.start);
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(2 * P * M));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScheduleSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8, 16),
                       ::testing::Values(1, 2, 4, 8, 32),
                       ::testing::Values(0, 5)));

}  // namespace
}  // namespace llmprism
