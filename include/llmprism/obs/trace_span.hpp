// Self-telemetry: RAII pipeline trace spans with Chrome trace_event
// export (loadable in Perfetto / chrome://tracing).
//
// A Span marks one timed region of the pipeline ("prism.analyze",
// "job.timeline", "monitor.window", ...). Collection is globally gated:
// when the collector is disabled (the default) a Span costs one relaxed
// atomic load and records nothing, so production paths can be annotated
// unconditionally — `BM_ObsOverhead_SpanDisabled` pins the cost.
//
// Completed spans go into per-thread buffers (one uncontended mutex each;
// a thread only ever races its own buffer against a drain), so concurrent
// per-job / per-window tasks never serialize on a shared sink. drain()
// gathers and clears every buffer; write_chrome_trace() emits the
// standard `{"traceEvents":[...]}` JSON with complete ("ph":"X") events.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace llmprism::obs {

/// One completed span. `name` must be a string with static storage
/// duration (every call site passes a literal); `arg` is an optional
/// numeric payload (job id, window ordinal) surfaced as args.id.
struct SpanRecord {
  const char* name = nullptr;
  std::uint32_t tid = 0;       ///< stable small id of the recording thread
  std::int64_t start_us = 0;   ///< steady-clock microseconds
  std::int64_t dur_us = 0;
  std::uint64_t arg = kNoArg;

  static constexpr std::uint64_t kNoArg = ~std::uint64_t{0};
};

class TraceCollector {
 public:
  static TraceCollector& instance();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Collect and clear all completed spans, sorted by (start, tid).
  [[nodiscard]] std::vector<SpanRecord> drain();

  /// Drain and emit Chrome trace_event JSON.
  void write_chrome_trace(std::ostream& os);

  /// Append one completed span to the calling thread's buffer.
  void record(const SpanRecord& span);

 private:
  TraceCollector() = default;

  struct ThreadBuffer {
    std::mutex mu;   ///< owner thread vs. drain; never owner vs. owner
    std::vector<SpanRecord> spans;
    std::uint32_t tid = 0;
  };
  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::mutex mu_;  ///< guards buffers_ registration and iteration
  /// shared_ptr keeps buffers alive past their owning thread's exit.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 0;
};

/// Write Chrome trace_event JSON for an explicit span list (drain() +
/// post-processing workflows).
void write_chrome_trace(std::ostream& os, const std::vector<SpanRecord>& spans);

/// RAII span: times construction -> destruction when the collector is
/// enabled, records nothing otherwise. `name` must be a literal (static
/// storage duration).
class Span {
 public:
  explicit Span(const char* name, std::uint64_t arg = SpanRecord::kNoArg);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  ///< null when the collector was disabled
  std::int64_t start_us_ = 0;
  std::uint64_t arg_ = SpanRecord::kNoArg;
};

}  // namespace llmprism::obs
