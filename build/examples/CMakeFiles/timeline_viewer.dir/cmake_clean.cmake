file(REMOVE_RECURSE
  "CMakeFiles/timeline_viewer.dir/timeline_viewer.cpp.o"
  "CMakeFiles/timeline_viewer.dir/timeline_viewer.cpp.o.d"
  "timeline_viewer"
  "timeline_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
