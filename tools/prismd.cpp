// prismd — the standalone diagnosis daemon binary.
//
// Thin shell over serve::run_main (which `prism serve` execs into as
// well): stream LPF-framed LFT flow chunks at the ingest socket, query
// diagnosis over the HTTP socket, SIGTERM to drain + snapshot. See
// DESIGN.md §14 and `prismd --help`.
#include "llmprism/serve/daemon.hpp"

int main(int argc, char** argv) {
  return llmprism::serve::run_main(argc, argv);
}
