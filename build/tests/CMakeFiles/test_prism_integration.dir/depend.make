# Empty dependencies file for test_prism_integration.
# This may be replaced when dependencies are built.
