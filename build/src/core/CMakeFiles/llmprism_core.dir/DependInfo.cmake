
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comm_type.cpp" "src/core/CMakeFiles/llmprism_core.dir/comm_type.cpp.o" "gcc" "src/core/CMakeFiles/llmprism_core.dir/comm_type.cpp.o.d"
  "/root/repo/src/core/diagnosis.cpp" "src/core/CMakeFiles/llmprism_core.dir/diagnosis.cpp.o" "gcc" "src/core/CMakeFiles/llmprism_core.dir/diagnosis.cpp.o.d"
  "/root/repo/src/core/job_recognition.cpp" "src/core/CMakeFiles/llmprism_core.dir/job_recognition.cpp.o" "gcc" "src/core/CMakeFiles/llmprism_core.dir/job_recognition.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/llmprism_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/llmprism_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/parallelism_inference.cpp" "src/core/CMakeFiles/llmprism_core.dir/parallelism_inference.cpp.o" "gcc" "src/core/CMakeFiles/llmprism_core.dir/parallelism_inference.cpp.o.d"
  "/root/repo/src/core/prism.cpp" "src/core/CMakeFiles/llmprism_core.dir/prism.cpp.o" "gcc" "src/core/CMakeFiles/llmprism_core.dir/prism.cpp.o.d"
  "/root/repo/src/core/render.cpp" "src/core/CMakeFiles/llmprism_core.dir/render.cpp.o" "gcc" "src/core/CMakeFiles/llmprism_core.dir/render.cpp.o.d"
  "/root/repo/src/core/timeline.cpp" "src/core/CMakeFiles/llmprism_core.dir/timeline.cpp.o" "gcc" "src/core/CMakeFiles/llmprism_core.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/llmprism_common.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/llmprism_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/llmprism_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/bocd/CMakeFiles/llmprism_bocd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
