// gen_trace — generate a synthetic multi-tenant flow trace (the input
// `prism` consumes) as CSV or binary LFT, for demos, fuzzing downstream
// tooling, or load-testing a collector pipeline.
//
// Usage:
//   gen_trace <out.csv|out.lft> [options]
//     --machines N       cluster size (default 32)
//     --jobs SPEC[,SPEC] job list; SPEC = tp:dp:pp[:steps[:zero]]
//                        (default "8:2:2:10,8:4:1:10")
//     --seed N           (default 42)
//     --degraded F       fraction of degraded pairs (collection noise)
//     --drop F           i.i.d. flow drop rate
//     --straggler SPEC   inject a compute straggler; SPEC =
//                        job:rank:step_begin:step_end[:slowdown]
//                        (slowdown defaults to 2.5; repeatable)
//     --format csv|lft   output format (default: by extension, .lft -> lft)
//   Prints the ground truth (jobs, layouts, faults) to stderr for
//   comparison.
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "llmprism/llmprism.hpp"

using namespace llmprism;

namespace {

std::vector<JobSimConfig> parse_jobs(const std::string& spec) {
  std::vector<JobSimConfig> jobs;
  std::stringstream all(spec);
  std::string one;
  while (std::getline(all, one, ',')) {
    std::stringstream ss(one);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ss, field, ':')) fields.push_back(field);
    if (fields.size() < 3) {
      throw std::invalid_argument("bad job spec '" + one +
                                  "' (want tp:dp:pp[:steps[:zero]])");
    }
    JobSimConfig job;
    job.parallelism.tp = static_cast<std::uint32_t>(std::stoul(fields[0]));
    job.parallelism.dp = static_cast<std::uint32_t>(std::stoul(fields[1]));
    job.parallelism.pp = static_cast<std::uint32_t>(std::stoul(fields[2]));
    job.parallelism.micro_batches = 4;
    job.num_steps =
        fields.size() > 3 ? static_cast<std::uint32_t>(std::stoul(fields[3]))
                          : 10;
    job.zero_overlap = fields.size() > 4 && fields[4] == "zero";
    jobs.push_back(job);
  }
  return jobs;
}

struct StragglerArg {
  std::size_t job = 0;
  StragglerSpec spec;
};

StragglerArg parse_straggler(const std::string& one) {
  std::stringstream ss(one);
  std::string field;
  std::vector<std::string> fields;
  while (std::getline(ss, field, ':')) fields.push_back(field);
  if (fields.size() < 4 || fields.size() > 5) {
    throw std::invalid_argument(
        "bad straggler spec '" + one +
        "' (want job:rank:step_begin:step_end[:slowdown])");
  }
  StragglerArg arg;
  arg.job = std::stoul(fields[0]);
  arg.spec.rank = static_cast<std::uint32_t>(std::stoul(fields[1]));
  arg.spec.step_begin = static_cast<std::uint32_t>(std::stoul(fields[2]));
  arg.spec.step_end = static_cast<std::uint32_t>(std::stoul(fields[3]));
  arg.spec.slowdown = fields.size() > 4 ? std::stod(fields[4]) : 2.5;
  return arg;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t machines = 32;
  std::string jobs_spec = "8:2:2:10,8:4:1:10";
  std::uint64_t seed = 42;
  double degraded = 0.0;
  double drop = 0.0;
  std::vector<StragglerArg> stragglers;
  std::string format;
  std::vector<std::string> positionals;

  cli::FlagSet flags("gen_trace");
  flags.flag("--machines", "N", "cluster size (default 32)", &machines);
  flags.flag("--jobs", "SPEC[,SPEC]",
             "job list; SPEC = tp:dp:pp[:steps[:zero]]", &jobs_spec);
  flags.flag("--seed", "N", "simulation seed (default 42)", &seed);
  flags.flag("--degraded", "F", "fraction of degraded pairs (noise)",
             &degraded);
  flags.flag("--drop", "F", "i.i.d. flow drop rate", &drop);
  flags.custom_flag(
      "--straggler", "SPEC",
      "inject a compute straggler; SPEC = "
      "job:rank:step_begin:step_end[:slowdown] (repeatable)",
      /*takes_value=*/true, [&](std::string_view v) -> std::string {
        try {
          stragglers.push_back(parse_straggler(std::string(v)));
        } catch (const std::exception& e) {
          return e.what();
        }
        return {};
      });
  flags.flag("--format", "csv|lft",
             "output format (default: by extension, .lft -> lft)", &format);
  flags.positionals("<out.csv|out.lft>", 1, 1, &positionals);

  const cli::ParseResult parsed = flags.parse(argc, argv);
  if (parsed.help) {
    std::cout << flags.usage();
    return 0;
  }
  if (!parsed.ok) {
    for (const std::string& e : parsed.errors) {
      std::cerr << "gen_trace: " << e << '\n';
    }
    std::cerr << "run 'gen_trace --help' for usage\n";
    return 2;
  }
  const std::string& out_path = positionals[0];
  if (format.empty()) {
    format = out_path.ends_with(".lft") ? "lft" : "csv";
  }
  if (format != "csv" && format != "lft") {
    std::cerr << "gen_trace: unknown format " << format
              << " (want csv or lft)\n";
    return 2;
  }

  try {
    ClusterSimConfig cfg;
    cfg.topology = {.num_machines = machines, .gpus_per_machine = 8,
                    .machines_per_leaf = 16, .num_spines = 4};
    cfg.seed = seed;
    for (const JobSimConfig& job : parse_jobs(jobs_spec)) {
      cfg.jobs.push_back({job, {}});
    }
    for (const StragglerArg& s : stragglers) {
      if (s.job >= cfg.jobs.size()) {
        std::cerr << "gen_trace: --straggler job " << s.job
                  << " out of range (have " << cfg.jobs.size() << " jobs)\n";
        return 2;
      }
      cfg.jobs[s.job].config.stragglers.push_back(s.spec);
    }
    cfg.noise.degraded_pair_fraction = degraded;
    cfg.noise.drop_rate = drop;
    if (const auto errors = cfg.noise.validate(); !errors.empty()) {
      std::cerr << "gen_trace: invalid noise configuration:\n";
      for (const std::string& e : errors) std::cerr << "  - " << e << '\n';
      return 2;
    }

    const ClusterSimResult sim = run_cluster_sim(cfg);
    if (format == "lft") {
      write_lft_file(out_path, sim.trace);
    } else {
      write_csv_file(out_path, sim.trace);
    }
    std::cout << "wrote " << sim.trace.size() << " flows to " << out_path
              << " (" << format << ")\n";

    std::cerr << "ground truth (" << sim.jobs.size() << " jobs):\n";
    for (std::size_t j = 0; j < sim.jobs.size(); ++j) {
      const auto& par = cfg.jobs[j].config.parallelism;
      std::cerr << "  job " << j << ": " << sim.jobs[j].gpus.size()
                << " GPUs, tp" << par.tp << "/dp" << par.dp << "/pp"
                << par.pp << ", " << cfg.jobs[j].config.num_steps
                << " steps\n";
      for (const StragglerSpec& s : cfg.jobs[j].config.stragglers) {
        std::cerr << "    straggler: rank " << s.rank << " (gpu "
                  << sim.jobs[j].gpus[s.rank] << "), steps ["
                  << s.step_begin << ", " << s.step_end << "], "
                  << s.slowdown << "x\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "gen_trace: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
