#include "llmprism/core/prism.hpp"

#include <cassert>
#include <cstdint>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "llmprism/common/log.hpp"
#include "llmprism/core/flow_router.hpp"
#include "llmprism/common/thread_pool.hpp"
#include "llmprism/obs/metrics.hpp"
#include "llmprism/obs/trace_span.hpp"

namespace llmprism {

namespace {

/// Registry instruments for the whole-pipeline view; looked up once.
struct PrismMetrics {
  obs::Counter& analyses;
  obs::Counter& jobs;
  obs::Counter& flows_routed;
  obs::Counter& flows_routed_via_dst;
  obs::Counter& flows_unattributed;
  obs::Counter& incidents;
  obs::Counter& alerts_explained;
  obs::Counter& alerts_orphaned;
  obs::Histogram& analyze_seconds;
};

PrismMetrics& prism_metrics() {
  static PrismMetrics metrics{
      obs::default_registry().counter("llmprism_analyses_total",
                                      "Prism::analyze calls completed"),
      obs::default_registry().counter("llmprism_jobs_recognized_total",
                                      "Training jobs recognized (Alg. 1)"),
      obs::default_registry().counter(
          "llmprism_flows_routed_total",
          "Flows attributed to a recognized job"),
      obs::default_registry().counter(
          "llmprism_flows_routed_via_dst_total",
          "Routed flows whose unattributed src was recovered via dst"),
      obs::default_registry().counter(
          "llmprism_flows_unattributed_total",
          "Flows no recognized job claims"),
      obs::default_registry().counter(
          "llmprism_incidents_total",
          "Attributed root-cause incidents emitted"),
      obs::default_registry().counter(
          "llmprism_alerts_explained_total",
          "k-sigma alerts an attributed incident accounts for"),
      obs::default_registry().counter(
          "llmprism_alerts_orphaned_total",
          "k-sigma alerts no blame-propagation rule could explain"),
      obs::default_registry().histogram(
          "llmprism_analyze_seconds",
          "Wall-clock duration of Prism::analyze"),
  };
  return metrics;
}

/// Fold one job's stage counters into the report-level telemetry block.
/// Called in job-id order, so the totals are scheduling-independent.
void fold_job_telemetry(ReportTelemetry& t, const JobAnalysis& analysis,
                        const SegmenterStats& timeline_segmenter,
                        const KSigmaStats& job_ksigma) {
  const CommTypeCounters& ct = analysis.comm_types.counters;
  t.pairs_classified += analysis.comm_types.pairs.size();
  for (const PairClassification& p : analysis.comm_types.pairs) {
    if (p.type == CommType::kDP) {
      ++t.pairs_dp;
    } else {
      ++t.pairs_pp;
    }
  }
  t.refinement_flips += ct.refinement_flips;
  t.artifact_size_clusters += ct.artifact_size_clusters;
  t.artifact_flows += ct.artifact_flows;
  t.artifact_segments += ct.artifact_segments;

  t.bocd_observations += ct.segmenter.observations;
  t.bocd_boundaries += ct.segmenter.boundaries;
  t.bocd_hard_resets += ct.segmenter.hard_resets;
  t.bocd_observations += timeline_segmenter.observations;
  t.bocd_boundaries += timeline_segmenter.boundaries;
  t.bocd_hard_resets += timeline_segmenter.hard_resets;

  t.timelines_reconstructed += analysis.timelines.size();
  for (const GpuTimeline& tl : analysis.timelines) {
    t.timeline_events += tl.events.size();
    t.steps_reconstructed += tl.steps.size();
  }

  t.ksigma_series += job_ksigma.series;
  t.ksigma_points += job_ksigma.points;
  t.ksigma_alerts += job_ksigma.alerts;
}

/// Join a non-empty error list into one exception message.
[[noreturn]] void throw_config_errors(const std::vector<std::string>& errors) {
  std::string message = "invalid configuration:";
  for (const std::string& e : errors) {
    message += "\n  - ";
    message += e;
  }
  throw std::invalid_argument(message);
}

}  // namespace

std::vector<std::string> PrismConfig::validate() const {
  std::vector<std::string> errors;
  if (!(recognition.jaccard_threshold > 0.0) ||
      recognition.jaccard_threshold > 1.0) {
    errors.push_back("recognition: jaccard_threshold must be in (0, 1], got " +
                     std::to_string(recognition.jaccard_threshold));
  }
  if (comm_type.size_tolerance < 0.0) {
    errors.push_back("comm_type: size_tolerance must be >= 0, got " +
                     std::to_string(comm_type.size_tolerance));
  }
  if (comm_type.min_size_share < 0.0 || comm_type.min_size_share >= 1.0) {
    errors.push_back("comm_type: min_size_share must be in [0, 1), got " +
                     std::to_string(comm_type.min_size_share));
  }
  if (timeline.min_compute_gap < 0) {
    errors.push_back("timeline: min_compute_gap must be >= 0, got " +
                     std::to_string(timeline.min_compute_gap));
  }
  const auto check_segmenter = [&errors](const SegmenterConfig& seg,
                                         const char* where) {
    if (seg.bocd.hazard_lambda <= 0.0) {
      errors.push_back(std::string(where) +
                       ": bocd.hazard_lambda must be > 0, got " +
                       std::to_string(seg.bocd.hazard_lambda));
    }
    if (!(seg.bocd.changepoint_threshold > 0.0) ||
        seg.bocd.changepoint_threshold > 1.0) {
      errors.push_back(std::string(where) +
                       ": bocd.changepoint_threshold must be in (0, 1], got " +
                       std::to_string(seg.bocd.changepoint_threshold));
    }
    if (seg.coalesce_gap < 0) {
      errors.push_back(std::string(where) + ": coalesce_gap must be >= 0");
    }
    if (seg.gap_guard_factor < 0.0) {
      errors.push_back(std::string(where) + ": gap_guard_factor must be >= 0");
    }
  };
  check_segmenter(comm_type.segmenter, "comm_type.segmenter");
  check_segmenter(timeline.segmenter, "timeline.segmenter");
  const auto check_ksigma = [&errors](const KSigmaConfig& ks,
                                      const char* where) {
    if (ks.k <= 0.0) {
      errors.push_back(std::string(where) + ": k must be > 0, got " +
                       std::to_string(ks.k));
    }
    if (ks.min_samples < 2) {
      errors.push_back(std::string(where) +
                       ": min_samples must be >= 2 (a spread estimate needs "
                       "at least two observations)");
    }
    if (ks.min_relative_excess < 0.0) {
      errors.push_back(std::string(where) +
                       ": min_relative_excess must be >= 0, got " +
                       std::to_string(ks.min_relative_excess));
    }
  };
  check_ksigma(diagnosis.ksigma, "diagnosis.ksigma");
  check_ksigma(diagnosis.switch_ksigma, "diagnosis.switch_ksigma");
  if (diagnosis.switch_dp_flow_limit == 0) {
    errors.push_back("diagnosis: switch_dp_flow_limit must be >= 1");
  }
  if (diagnosis.switch_health_percentile < 0.0 ||
      diagnosis.switch_health_percentile > 100.0) {
    errors.push_back(
        "diagnosis: switch_health_percentile must be in [0, 100], got " +
        std::to_string(diagnosis.switch_health_percentile));
  }
  if (attribution.min_compute_excess < 0.0) {
    errors.push_back("attribution: min_compute_excess must be >= 0, got " +
                     std::to_string(attribution.min_compute_excess));
  }
  if (!(attribution.origin_cluster_ratio > 0.0) ||
      attribution.origin_cluster_ratio > 1.0) {
    errors.push_back(
        "attribution: origin_cluster_ratio must be in (0, 1], got " +
        std::to_string(attribution.origin_cluster_ratio));
  }
  if (attribution.max_culprits == 0) {
    errors.push_back("attribution: max_culprits must be >= 1");
  }
  return errors;
}

ReportTelemetry& ReportTelemetry::operator+=(const ReportTelemetry& other) {
  flows_total += other.flows_total;
  flows_routed += other.flows_routed;
  flows_routed_via_dst += other.flows_routed_via_dst;
  flows_unattributed += other.flows_unattributed;
  pairs_classified += other.pairs_classified;
  pairs_dp += other.pairs_dp;
  pairs_pp += other.pairs_pp;
  refinement_flips += other.refinement_flips;
  artifact_size_clusters += other.artifact_size_clusters;
  artifact_flows += other.artifact_flows;
  artifact_segments += other.artifact_segments;
  bocd_observations += other.bocd_observations;
  bocd_boundaries += other.bocd_boundaries;
  bocd_hard_resets += other.bocd_hard_resets;
  timelines_reconstructed += other.timelines_reconstructed;
  timeline_events += other.timeline_events;
  steps_reconstructed += other.steps_reconstructed;
  ksigma_series += other.ksigma_series;
  ksigma_points += other.ksigma_points;
  ksigma_alerts += other.ksigma_alerts;
  incidents += other.incidents;
  alerts_explained += other.alerts_explained;
  alerts_orphaned += other.alerts_orphaned;
  return *this;
}

Prism::Prism(const ClusterTopology& topology, PrismConfig config)
    : topology_(topology), config_(std::move(config)) {
  if (const auto errors = config_.validate(); !errors.empty()) {
    throw_config_errors(errors);
  }
  const std::size_t threads = ThreadPool::resolve(config_.num_threads);
  // The calling thread participates in every loop, so `threads - 1` workers
  // yield exactly `threads` concurrent lanes; with one thread no pool is
  // created and analyze() runs the plain in-order loop.
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads - 1);
}

std::size_t Prism::num_threads() const {
  return pool_ ? pool_->concurrency() : 1;
}

PrismReport Prism::analyze(const FlowTrace& trace) const {
  return analyze(trace, nullptr);
}

PrismReport Prism::analyze(const FlowTrace& trace,
                           PrismSession* session) const {
  // Sort-once boundary: everything downstream (routing, per-pair CSR
  // positions, windowing, DP-run merging) relies on time order, so an
  // unsorted input is sorted exactly once here — never again per job.
  // Both AoS overloads then transpose once into columns and run the
  // columnar core: one pipeline for every input representation is what
  // makes the FlowTrace and FlowView paths bit-identical by construction.
  if (!trace.is_sorted()) {
    FlowTrace sorted = trace;
    sorted.sort();
    const FlowColumns columns(sorted);
    return analyze_sorted(columns.view(), session);
  }
  const FlowColumns columns(trace);
  return analyze_sorted(columns.view(), session);
}

PrismReport Prism::analyze(const FlowView& view) const {
  return analyze(view, nullptr);
}

PrismReport Prism::analyze(const FlowView& view,
                           PrismSession* session) const {
  if (view.sorted) return analyze_sorted(view, session);
  if (view.verify_sorted()) {
    // Storage with no cached sortedness fact (e.g. an LFT written without
    // the sorted flag): one O(N) verify instead of a sort.
    FlowView sorted_view = view;
    sorted_view.sorted = true;
    return analyze_sorted(sorted_view, session);
  }
  // Boundary sort without mutating the caller's storage (it may be a
  // read-only mapping): gather the rows into owning columns, sort those.
  std::vector<std::uint32_t> rows(view.size());
  std::iota(rows.begin(), rows.end(), 0u);
  FlowColumns sorted =
      FlowColumns::gather(view, rows, /*rows_sorted_subset=*/false);
  sorted.sort();
  return analyze_sorted(sorted.view(), session);
}

PrismReport Prism::analyze_sorted(const FlowView& view,
                                  PrismSession* session) const {
  PrismReport report;
  PrismMetrics& metrics = prism_metrics();
  const obs::ScopedTimer analyze_timer(metrics.analyze_seconds);
  const obs::Span analyze_span("prism.analyze");

  // A caller that did not arm the session gets sane window geometry: the
  // trace's own end, with no tail hold-back (a one-shot analysis has no
  // next window to complete a held burst).
  if (session != nullptr && !session->window_armed()) {
    session->begin_window(view.time_span().end, /*hold_tail=*/false);
  }

  // (1) job recognition. The warm fast path is gated on exact-match
  // merging (jaccard_threshold >= 1): only there is the partition provably
  // a pure function of the window's pair set, which is what makes reuse a
  // verification rather than a guess.
  const bool try_recognition_reuse =
      session != nullptr && session->config().reuse_recognition &&
      config_.recognition.jaccard_threshold >= 1.0;
  bool recognition_reused = false;
  const JobRecognizer recognizer(topology_, config_.recognition);
  {
    const obs::Span span("prism.recognize");
    if (try_recognition_reuse && session->probe_recognition(view)) {
      report.recognition = session->cached_recognition();
      recognition_reused = true;
    } else {
      report.recognition = recognizer.recognize(view);
      if (try_recognition_reuse) session->store_recognition(report.recognition);
    }
  }
  log::info("prism: recognized ", report.recognition.jobs.size(),
            " jobs from ", report.recognition.num_cross_machine_clusters,
            " cross-machine clusters",
            recognition_reused ? " (partition reused)" : "");

  // Route each flow to its job in one ordered pass over the trace: a
  // dense interned GPU->job table (one load per flow, no hash probes),
  // src lookup with dst fallback. A recognition-cache hit also reuses the
  // cached dense table instead of re-interning every job's GPU set.
  const std::size_t num_jobs = report.recognition.jobs.size();
  std::vector<FlowColumns> job_columns;
  {
    const obs::Span span("prism.route");
    std::optional<FlowRouter> local_router;
    const FlowRouter& router =
        recognition_reused
            ? session->cached_router()
            : local_router.emplace(
                  std::span<const RecognizedJob>(report.recognition.jobs));
    FlowRouter::ColumnarResult routed = router.route(view);
    job_columns = std::move(routed.job_columns);
    report.telemetry.flows_routed = routed.flows_routed;
    report.telemetry.flows_routed_via_dst = routed.flows_routed_via_dst;
    report.telemetry.flows_unattributed = routed.flows_unattributed;
  }
  report.telemetry.flows_total = view.size();

  // Resolve per-job warm states sequentially before the fan-out (the map
  // may rehash on insert; references stay valid — it is node-based — but
  // the lookups themselves must not race). Each task then touches only its
  // own job's state.
  std::vector<SessionJobState*> job_states(num_jobs, nullptr);
  if (session != nullptr) {
    for (std::size_t j = 0; j < num_jobs; ++j) {
      job_states[j] = &session->job_state(report.recognition.jobs[j].machines);
    }
  }

  const CommTypeIdentifier identifier(config_.comm_type);
  const TimelineReconstructor reconstructor(config_.timeline);
  const Diagnoser diagnoser(config_.diagnosis);

  // (2)-(4a) per-job stage, one task per recognized job. Each task owns its
  // slot in `analyses` / `job_dp_flows` / the two stats vectors and touches
  // nothing else, so the result cannot depend on scheduling; DP flows and
  // telemetry are merged in job-id order below, which keeps the
  // cluster-wide stage's input byte-identical to the sequential path.
  std::vector<JobAnalysis> analyses(num_jobs);
  std::vector<FlowColumns> job_dp_flows(num_jobs);
  std::vector<SegmenterStats> timeline_stats(num_jobs);
  std::vector<KSigmaStats> ksigma_stats(num_jobs);
  parallel_for(pool_.get(), num_jobs, [&](std::size_t j) {
    const obs::Span job_span("prism.job", j);
    JobAnalysis& analysis = analyses[j];
    analysis.id = JobId(static_cast<std::uint32_t>(j));
    analysis.job = report.recognition.jobs[j];
    analysis.trace = std::move(job_columns[j]);
    // Routing preserved the sorted input's order, so this is O(1) on the
    // cached flag — no per-job re-sort.
    assert(analysis.trace.is_sorted() &&
           "routing must preserve the sorted input's order");
    const FlowView job_view = analysis.trace.view();

    SessionJobState* const state = job_states[j];

    // (2) parallelism strategies, over the job's CSR pair index; the
    // per-flow types come back as a dense vector (one CommType per trace
    // position) shared with DP collection and timeline reconstruction.
    // With a session, last window's classifications serve as warm priors.
    const PairIndex pair_index(job_view);
    std::vector<CommType> flow_types;
    {
      const obs::Span span("job.comm_type", j);
      CommTypeCarry* const carry =
          state != nullptr && session->config().reuse_comm_types
              ? &state->comm
              : nullptr;
      // The pool is shared with the per-job fan-out: each pair/GPU is an
      // independently claimed task, so a lone huge job still saturates the
      // pool instead of serializing on one per-job task.
      analysis.comm_types = identifier.identify(job_view, pair_index,
                                                &flow_types, carry,
                                                pool_.get());
    }

    // Collect this job's DP flows for cluster-wide switch diagnosis; the
    // trace is sorted, so this gathered subsequence is born sorted too.
    for (std::size_t i = 0; i < job_view.size(); ++i) {
      if (flow_types[i] == CommType::kDP) {
        job_dp_flows[j].append_row(job_view, i);
      }
    }

    // (3) timelines + (4) job-level diagnosis
    if (config_.reconstruct_timelines) {
      {
        const obs::Span span("job.timeline", j);
        TimelineCarryContext tctx;
        if (state != nullptr && session->config().carry_timeline_tails) {
          tctx.carry = &state->timeline;
          tctx.window_end = session->window_end();
          tctx.hold_tail = session->hold_tail();
          tctx.boundary_hold = session->config().boundary_hold;
        }
        analysis.timelines = reconstructor.reconstruct_all(
            job_view, flow_types, &timeline_stats[j], tctx, pool_.get());
      }
      const obs::Span span("job.diagnosis", j);
      if (state != nullptr && session->config().ewma_baselines) {
        // Per-timeline so each GPU scores against ITS carried baseline;
        // concatenation order matches the span overload's iteration order.
        const EwmaStepPolicy policy{session->config().ewma_alpha,
                                    session->config().ewma_min_samples};
        for (const GpuTimeline& tl : analysis.timelines) {
          std::vector<StepAlert> alerts = diagnoser.cross_step_carried(
              tl, state->step_baselines[tl.gpu], policy, &ksigma_stats[j],
              &state->ewma_alerts_last);
          analysis.step_alerts.insert(analysis.step_alerts.end(),
                                      alerts.begin(), alerts.end());
        }
      } else {
        analysis.step_alerts = diagnoser.cross_step(
            std::span<const GpuTimeline>(analysis.timelines),
            &ksigma_stats[j]);
      }
      const auto durations = group_dp_durations(
          analysis.timelines, analysis.comm_types.dp_components);
      analysis.group_alerts = diagnoser.cross_group(durations,
                                                    &ksigma_stats[j]);
    }

    // (2b) full 3D layout from the recovered structure
    const obs::Span infer_span("job.infer", j);
    analysis.inferred = infer_parallelism(analysis.job.gpus.size(),
                                          analysis.comm_types,
                                          std::span(analysis.timelines));
  });
  report.jobs = std::move(analyses);

  // Deterministic merge: a k-way merge of the per-job sorted DP runs,
  // ties resolved to the lower job id — O(N log J) and zero re-sorting,
  // independent of task completion order.
  const FlowColumns all_dp_flows =
      FlowColumns::merge_sorted_runs(std::move(job_dp_flows));
  for (std::size_t j = 0; j < num_jobs; ++j) {
    fold_job_telemetry(report.telemetry, report.jobs[j], timeline_stats[j],
                       ksigma_stats[j]);
  }

  // (4) cluster-wide switch-level diagnosis
  KSigmaStats switch_stats;
  {
    const obs::Span span("prism.switch_diagnosis");
    const FlowView dp_view = all_dp_flows.view();
    report.switch_bandwidth_gbps = Diagnoser::per_switch_bandwidth(dp_view);
    report.switch_bandwidth_alerts =
        diagnoser.switch_bandwidth(dp_view, &switch_stats);
    report.switch_concurrency_alerts = diagnoser.switch_concurrency(dp_view);
  }
  report.telemetry.ksigma_series += switch_stats.series;
  report.telemetry.ksigma_points += switch_stats.points;
  report.telemetry.ksigma_alerts += switch_stats.alerts;

  // (5) root-cause attribution: propagate blame backwards from every
  // alert over the recovered dependency graph. Sequential over the
  // already-merged per-job results, so it is trivially thread-count-
  // invariant (the fan-out above produced identical inputs).
  if (config_.attribute && config_.reconstruct_timelines) {
    const obs::Span span("prism.attribute");
    std::vector<JobAttributionInput> inputs;
    inputs.reserve(num_jobs);
    for (const JobAnalysis& job : report.jobs) {
      inputs.push_back(JobAttributionInput{
          .id = job.id,
          .trace = &job.trace,
          .comm_types = &job.comm_types,
          .timelines = job.timelines,
          .step_alerts = job.step_alerts,
          .group_alerts = job.group_alerts});
    }
    const Attributor attributor(config_.attribution);
    report.attribution =
        attributor.attribute(inputs, report.switch_bandwidth_alerts,
                             report.switch_concurrency_alerts);
    report.telemetry.incidents = report.attribution.incidents.size();
    report.telemetry.alerts_explained =
        report.attribution.telemetry.alerts_explained;
    report.telemetry.alerts_orphaned =
        report.attribution.telemetry.alerts_orphaned;
  }

  // Session bookkeeping: fold per-job outcomes in job-id order (so the
  // counters are scheduling-invariant), then close the window (evictions,
  // window counter, disarm).
  if (session != nullptr) {
    for (std::size_t j = 0; j < num_jobs; ++j) {
      session->fold_job(*job_states[j]);
    }
    session->finish_window();
  }

  metrics.analyses.inc();
  metrics.jobs.inc(num_jobs);
  metrics.flows_routed.inc(report.telemetry.flows_routed);
  metrics.flows_routed_via_dst.inc(report.telemetry.flows_routed_via_dst);
  metrics.flows_unattributed.inc(report.telemetry.flows_unattributed);
  metrics.incidents.inc(report.telemetry.incidents);
  metrics.alerts_explained.inc(report.telemetry.alerts_explained);
  metrics.alerts_orphaned.inc(report.telemetry.alerts_orphaned);
  return report;
}

}  // namespace llmprism
