# Empty dependencies file for test_parallelism_inference.
# This may be replaced when dependencies are built.
