// Warm-state snapshot / restore — the daemon's restart story.
//
// A long-running prismd carries hours of warm analysis state: comm-type
// priors, cross-window EWMA step baselines, held timeline tails, the
// recognition cache, the monitor's reorder buffer and stable job-id map.
// Losing it on restart means every job runs cold again (and stable ids
// churn). save_snapshot serializes a PrismSession — or a whole
// OnlineMonitor, session included — to a versioned binary blob;
// restore_snapshot loads it back into an object constructed with the SAME
// configuration and topology, after which subsequent ingest produces
// reports byte-identical to an uninterrupted session (asserted in
// tests/test_snapshot.cpp and test_session_equivalence.cpp).
//
// Blob layout (little-endian):
//   0  char[4]  magic "LPS1"
//   4  u16      version        (currently 1)
//   6  u16      kind           (1 = session, 2 = monitor)
//   8  payload  (kind-specific; maps serialized in sorted key order, so
//               the same state always produces the same bytes)
//   end-8  u64  XXH64 of every preceding byte (seed 0)
//
// Corruption contract (modeled on the LFT readers): any truncated,
// bit-flipped, wrong-magic/version/kind, or config-mismatched blob fails
// with a descriptive std::runtime_error and the target object is left
// UNCHANGED (the payload is parsed fully before any state is committed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <string>

namespace llmprism {

class PrismSession;
class OnlineMonitor;

namespace snapshot {

inline constexpr char kMagic[4] = {'L', 'P', 'S', '1'};
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::uint16_t kKindSession = 1;
inline constexpr std::uint16_t kKindMonitor = 2;
inline constexpr std::size_t kHeaderSize = 8;

}  // namespace snapshot

/// Serialize the session's carried warm state (recognition cache,
/// comm-type priors, timeline tails, EWMA baselines, counters).
void save_snapshot(std::ostream& os, const PrismSession& session);
/// Serialize a monitor — reorder buffer, window clock, stable-id map,
/// lifetime stats, and (with carry_state) the embedded session.
void save_snapshot(std::ostream& os, const OnlineMonitor& monitor);

/// Restore a blob into a session/monitor constructed with the same
/// configuration (and, for the monitor, the same topology). Throws
/// std::runtime_error on any malformed blob or configuration mismatch;
/// the target is unchanged on failure.
void restore_snapshot(std::span<const std::byte> blob, PrismSession& session);
void restore_snapshot(std::span<const std::byte> blob, OnlineMonitor& monitor);
/// Stream variants: the stream is consumed to EOF (one blob per stream).
void restore_snapshot(std::istream& is, PrismSession& session);
void restore_snapshot(std::istream& is, OnlineMonitor& monitor);

/// File wrappers; throw std::runtime_error when the file cannot be
/// opened/written (and restore on any corruption).
void save_snapshot_file(const std::string& path, const OnlineMonitor& monitor);
void restore_snapshot_file(const std::string& path, OnlineMonitor& monitor);

}  // namespace llmprism
