// Tiny leveled logger. The analysis pipeline runs continuously in
// production, so logging must be cheap when disabled: level check first,
// formatting only when the message will be emitted.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace llmprism::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
Level get_level();
void set_level(Level level);

namespace detail {
void emit(Level level, std::string_view message);
}  // namespace detail

/// Log `message` at `level` if enabled. Message pieces are streamed, so call
/// sites read like: log::info("recognized ", jobs.size(), " jobs").
template <typename... Args>
void write(Level level, Args&&... args) {
  if (level < get_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  detail::emit(level, oss.str());
}

template <typename... Args>
void debug(Args&&... args) {
  write(Level::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void info(Args&&... args) {
  write(Level::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void warn(Args&&... args) {
  write(Level::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void error(Args&&... args) {
  write(Level::kError, std::forward<Args>(args)...);
}

}  // namespace llmprism::log
